package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/erlang"
)

func newTestServer(t *testing.T, mutate ...func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		// Keep startup cheap in tests; individual tests preheat what they
		// need.
		PreheatRhos:    []float64{5, 120},
		PreheatServers: 256,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, s *Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
	return w
}

func post(t *testing.T, s *Server, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", target, strings.NewReader(body)))
	return w
}

// decodeError asserts the body is exactly the structured error shape and
// returns it.
func decodeError(t *testing.T, w *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var resp ErrorResponse
	dec := json.NewDecoder(bytes.NewReader(w.Body.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("response is not the structured error shape: %v\nbody: %s", err, w.Body.String())
	}
	if resp.Error.Code == "" {
		t.Fatalf("error response has empty code: %s", w.Body.String())
	}
	return resp.Error
}

func TestServersEndpoint(t *testing.T) {
	s := newTestServer(t)
	for _, tc := range []struct {
		rho, target float64
	}{
		{5, 0.01}, {120, 0.001}, {0.5, 0.1}, {1000, 1e-6}, {0, 0.01},
	} {
		w := get(t, s, fmt.Sprintf("/v1/servers?rho=%g&target=%g", tc.rho, tc.target))
		if w.Code != 200 {
			t.Fatalf("rho=%g target=%g: status %d, body %s", tc.rho, tc.target, w.Code, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		var resp struct {
			Rho, Target, Loss, Utilization float64
			Servers                        int
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response JSON: %v: %s", err, w.Body.String())
		}
		wantN, err := erlang.Servers(tc.rho, tc.target, 0)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Servers != wantN {
			t.Errorf("servers(rho=%g, target=%g) = %d, want %d", tc.rho, tc.target, resp.Servers, wantN)
		}
		wantLoss := erlang.MustB(wantN, tc.rho)
		if resp.Loss != wantLoss {
			t.Errorf("loss = %g, want %g", resp.Loss, wantLoss)
		}
	}
}

func TestLossEndpoint(t *testing.T) {
	s := newTestServer(t)
	w := get(t, s, "/v1/loss?n=8&rho=5")
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		N                                  int
		Rho, Loss, Carried, Utilization, W float64
		Wait                               float64
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v: %s", err, w.Body.String())
	}
	if want := erlang.MustB(8, 5); resp.Loss != want {
		t.Errorf("loss = %g, want %g", resp.Loss, want)
	}
	wantWait, _ := erlang.C(8, 5)
	if resp.Wait != wantWait {
		t.Errorf("wait = %g, want %g", resp.Wait, wantWait)
	}
	if want := 5 * (1 - resp.Loss); resp.Carried != want {
		t.Errorf("carried = %g, want %g", resp.Carried, want)
	}
	if want := resp.Carried / 8; resp.Utilization != want {
		t.Errorf("utilization = %g, want %g", resp.Utilization, want)
	}

	// n=0 is a valid (degenerate) pool: everything is lost.
	w = get(t, s, "/v1/loss?n=0&rho=5")
	if w.Code != 200 {
		t.Fatalf("n=0 status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Loss != 1 || resp.Utilization != 0 {
		t.Errorf("n=0: loss=%g util=%g, want 1 and 0", resp.Loss, resp.Utilization)
	}
}

// TestQueryEdgeCases drives every malformed single-query shape through the
// full handler stack: each must produce the structured error, the right
// status, and never a 200.
func TestQueryEdgeCases(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name, target string
		wantStatus   int
		wantCode     string
	}{
		{"missing params", "/v1/servers", 400, CodeInvalidArgument},
		{"missing target", "/v1/servers?rho=5", 400, CodeInvalidArgument},
		{"bad float", "/v1/servers?rho=abc&target=0.01", 400, CodeInvalidArgument},
		{"unknown param", "/v1/servers?rho=5&target=0.01&bogus=1", 400, CodeInvalidArgument},
		{"duplicate param", "/v1/servers?rho=5&rho=6&target=0.01", 400, CodeInvalidArgument},
		{"target zero", "/v1/servers?rho=5&target=0", 400, CodeInvalidArgument},
		{"target one", "/v1/servers?rho=5&target=1", 400, CodeInvalidArgument},
		{"target above one", "/v1/servers?rho=5&target=1.5", 400, CodeInvalidArgument},
		{"target negative", "/v1/servers?rho=5&target=-0.1", 400, CodeInvalidArgument},
		{"target NaN", "/v1/servers?rho=5&target=NaN", 400, CodeInvalidArgument},
		{"negative rho", "/v1/servers?rho=-5&target=0.01", 400, CodeInvalidArgument},
		{"rho Inf", "/v1/servers?rho=Inf&target=0.01", 400, CodeInvalidArgument},
		{"loss missing n", "/v1/loss?rho=5", 400, CodeInvalidArgument},
		{"loss bad n", "/v1/loss?n=2.5&rho=5", 400, CodeInvalidArgument},
		{"loss negative n", "/v1/loss?n=-1&rho=5", 400, CodeInvalidArgument},
		{"loss rejects target", "/v1/loss?n=3&rho=5&target=0.01", 400, CodeInvalidArgument},
		{"bad escape", "/v1/servers?rho=%zz&target=0.01", 400, CodeInvalidArgument},
		{"unknown endpoint", "/v1/nope", 404, CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := get(t, s, tc.target)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if e := decodeError(t, w); e.Code != tc.wantCode {
				t.Errorf("code %q, want %q (message %q)", e.Code, tc.wantCode, e.Message)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t)
	for _, tc := range []struct{ method, path string }{
		{"POST", "/v1/servers"},
		{"DELETE", "/v1/loss"},
		{"GET", "/v1/batch"},
		{"PUT", "/v1/sweep"},
	} {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(tc.method, tc.path, strings.NewReader("{}")))
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, w.Code)
		}
		if e := decodeError(t, w); e.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s: code %q", tc.method, tc.path, e.Code)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t)
	body := `{"queries":[
		{"kind":"servers","rho":120,"target":0.001},
		{"kind":"loss","n":8,"rho":5},
		{"kind":"traffic","n":8,"target":0.01},
		{"kind":"utilization","n":8,"rho":5},
		{"kind":"servers","rho":-1,"target":0.01},
		{"kind":"frobnicate"}
	]}`
	w := post(t, s, "/v1/batch", body)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(resp.Results))
	}
	wantN, _ := erlang.Servers(120, 0.001, 0)
	if resp.Results[0].Servers == nil || *resp.Results[0].Servers != wantN {
		t.Errorf("servers result = %v, want %d", resp.Results[0].Servers, wantN)
	}
	if resp.Results[1].Loss == nil || *resp.Results[1].Loss != erlang.MustB(8, 5) {
		t.Errorf("loss result = %v, want %g", resp.Results[1].Loss, erlang.MustB(8, 5))
	}
	wantT, _ := erlang.Traffic(8, 0.01)
	if resp.Results[2].Traffic == nil || *resp.Results[2].Traffic != wantT {
		t.Errorf("traffic result = %v, want %g", resp.Results[2].Traffic, wantT)
	}
	wantU, _ := erlang.Utilization(8, 5)
	if resp.Results[3].Utilization == nil || *resp.Results[3].Utilization != wantU {
		t.Errorf("utilization result = %v, want %g", resp.Results[3].Utilization, wantU)
	}
	for i := 4; i < 6; i++ {
		if resp.Results[i].Error == nil || resp.Results[i].Error.Code != CodeInvalidArgument {
			t.Errorf("result %d: error = %+v, want invalid_argument", i, resp.Results[i].Error)
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxBodyBytes = 512
		c.MaxBatchQueries = 4
	})
	cases := []struct {
		name, body string
		wantStatus int
		wantCode   string
	}{
		{"malformed JSON", `{"queries":[`, 400, CodeInvalidArgument},
		{"not JSON at all", `hello`, 400, CodeInvalidArgument},
		{"zero queries", `{"queries":[]}`, 400, CodeInvalidArgument},
		{"queries missing", `{}`, 400, CodeInvalidArgument},
		{"unknown field", `{"queries":[{"kind":"loss","n":1,"rho":1}],"wat":1}`, 400, CodeInvalidArgument},
		{"too many queries", `{"queries":[{"kind":"loss","n":1,"rho":1},{"kind":"loss","n":1,"rho":1},{"kind":"loss","n":1,"rho":1},{"kind":"loss","n":1,"rho":1},{"kind":"loss","n":1,"rho":1}]}`, 400, CodeInvalidArgument},
		{"body too large", `{"queries":[` + strings.Repeat(`{"kind":"loss","n":1,"rho":1},`, 40) + `{"kind":"loss","n":1,"rho":1}]}`, 413, CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/batch", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if e := decodeError(t, w); e.Code != tc.wantCode {
				t.Errorf("code %q, want %q (message %q)", e.Code, tc.wantCode, e.Message)
			}
		})
	}
}

// smokeSweepSpec is a 2-point, short-horizon sweep cheap enough for unit
// tests; the golden fixtures use the same file.
func smokeSweepSpec(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("testdata/sweep-request.json")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSweepEndpoint(t *testing.T) {
	s := newTestServer(t)
	w := post(t, s, "/v1/sweep", smokeSweepSpec(t))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Size != 2 || len(resp.Points) != 2 {
		t.Fatalf("size %d / %d points, want 2", resp.Size, len(resp.Points))
	}
	for i, p := range resp.Points {
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
		if p.Result.Replications == 0 {
			t.Errorf("point %d ran zero replications", i)
		}
		if p.Result.Hosts == 0 {
			t.Errorf("point %d reports zero hosts", i)
		}
	}

	// The same spec twice must answer identically (determinism contract).
	w2 := post(t, s, "/v1/sweep", smokeSweepSpec(t))
	if w2.Code != 200 {
		t.Fatalf("second run status %d", w2.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("identical sweep requests produced different responses")
	}
}

func TestSweepEdgeCases(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxSweepPoints = 4 })
	cases := []struct {
		name, body string
		wantStatus int
		wantCode   string
	}{
		{"malformed JSON", `{"base"`, 400, CodeInvalidArgument},
		{"unknown field", `{"basis":{}}`, 400, CodeInvalidArgument},
		{"invalid base", `{"base":{"services":[]}}`, 400, CodeInvalidArgument},
		{"axis without values", `{"base":{"services":[{"profile":{"preset":"specweb-ecommerce"},"arrivals":{"kind":"poisson","rate":10},"dedicated_servers":1}],"fleet":{"hosts":1}},"axes":[{"path":"fleet.hosts","values":[]}]}`, 400, CodeInvalidArgument},
		{"too many points", `{"base":{"services":[{"profile":{"preset":"specweb-ecommerce"},"arrivals":{"kind":"poisson","rate":10},"dedicated_servers":1}],"fleet":{"hosts":1}},"axes":[{"path":"fleet.hosts","values":[1,2,3,4,5]}]}`, 400, CodeInvalidArgument},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/sweep", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if e := decodeError(t, w); e.Code != tc.wantCode {
				t.Errorf("code %q, want %q (message %q)", e.Code, tc.wantCode, e.Message)
			}
		})
	}
}

// TestSweepCanceledMidRun cancels the request context while the sweep is
// running: the handler must answer with the structured canceled error (on
// the recorder — the real client is gone), not panic and not 200.
func TestSweepCanceledMidRun(t *testing.T) {
	s := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(smokeSweepSpec(t))).WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(w, req)
	}()
	cancel()
	<-done
	if w.Code != statusCanceledClient {
		t.Fatalf("status %d, want %d; body %s", w.Code, statusCanceledClient, w.Body.String())
	}
	if e := decodeError(t, w); e.Code != CodeCanceled {
		t.Errorf("code %q, want %q", e.Code, CodeCanceled)
	}

	// The server must stay fully serviceable afterwards.
	if w := get(t, s, "/v1/servers?rho=5&target=0.01"); w.Code != 200 {
		t.Errorf("server unhealthy after canceled sweep: %d", w.Code)
	}
}

// TestSweepTimeout arms a tiny request timeout: the sweep must come back
// as 504 deadline_exceeded.
func TestSweepTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	w := post(t, s, "/v1/sweep", smokeSweepSpec(t))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", w.Code, w.Body.String())
	}
	if e := decodeError(t, w); e.Code != CodeDeadlineExceeded {
		t.Errorf("code %q, want %q", e.Code, CodeDeadlineExceeded)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s := newTestServer(t)
	if w := get(t, s, "/healthz"); w.Code != 200 || w.Body.String() != `{"status":"ok"}` {
		t.Errorf("healthz: %d %s", w.Code, w.Body.String())
	}
	if w := get(t, s, "/readyz"); w.Code != 200 {
		t.Errorf("readyz while ready: %d", w.Code)
	}
	s.SetReady(false)
	if w := get(t, s, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", w.Code)
	}
	// Draining only affects the probe — queries still answer.
	if w := get(t, s, "/v1/servers?rho=5&target=0.01"); w.Code != 200 {
		t.Errorf("query while draining: %d", w.Code)
	}
	s.SetReady(true)
	if w := get(t, s, "/readyz"); w.Code != 200 {
		t.Errorf("readyz after re-ready: %d", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	get(t, s, "/v1/servers?rho=5&target=0.01")
	get(t, s, "/v1/servers?rho=5&target=0.01")
	get(t, s, "/v1/loss?n=2&rho=1")
	w := get(t, s, "/metrics")
	if w.Code != 200 {
		t.Fatalf("metrics status %d", w.Code)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["http/servers/requests"]; got != 2 {
		t.Errorf("http/servers/requests = %d, want 2", got)
	}
	if got := snap.Counters["http/loss/requests"]; got != 1 {
		t.Errorf("http/loss/requests = %d, want 1", got)
	}
	if _, ok := snap.Counters["serve/memo_hits"]; !ok {
		t.Error("memo metrics missing from snapshot")
	}
}

// TestServeQueryAllocations pins the full single-query serve path —
// router, middleware, parse, memo, JSON encode — at zero allocations
// once the memo is warm.
func TestServeQueryAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on instrumented paths; the bench gate pins allocs in the normal build")
	}
	s := newTestServer(t)
	req := &http.Request{Method: "GET", URL: &url.URL{Path: "/v1/servers", RawQuery: "rho=120&target=0.001"}}
	lossReq := &http.Request{Method: "GET", URL: &url.URL{Path: "/v1/loss", RawQuery: "n=140&rho=120"}}
	w := &nullResponseWriter{h: http.Header{}}
	s.ServeHTTP(w, req) // warm memo, pools and header map
	s.ServeHTTP(w, lossReq)
	if w.status != 200 {
		t.Fatalf("warmup status %d", w.status)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		s.ServeHTTP(w, req)
		s.ServeHTTP(w, lossReq)
	})
	if allocs != 0 {
		t.Errorf("hot serve path allocates %v allocs per two requests, want 0", allocs)
	}
}

// nullResponseWriter is a preallocated ResponseWriter for allocation
// tests and benchmarks.
type nullResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(c int)   { w.status = c }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
