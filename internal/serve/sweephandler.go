package serve

import (
	"fmt"
	"net/http"

	"repro/internal/sweep"
)

// SweepPoint is one grid point of a sweep response: placement metadata
// plus the full simulation summary.
type SweepPoint struct {
	Index    int               `json:"index"`
	Label    string            `json:"label,omitempty"`
	CacheHit bool              `json:"cache_hit,omitempty"`
	Result   sweep.PointResult `json:"result"`
}

// SweepResponse is the POST /v1/sweep response.
type SweepResponse struct {
	Name   string       `json:"name,omitempty"`
	Size   int          `json:"size"`
	Points []SweepPoint `json:"points"`
}

// handleSweep lowers a declarative sweep spec (the same JSON cmd/simulate
// -sweep takes) onto the shared sweep engine: expansion, the worker-pool
// budget, and the content-addressed result cache all behave exactly as in
// the batch tools, so a what-if grid asked over HTTP is bit-identical to
// the same grid run offline.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	if !s.decodePost(w, r, func(r *http.Request) error {
		sp, err := sweep.ParseSpec(r.Body)
		if err != nil {
			return err
		}
		spec = sp
		return nil
	}) {
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	if size := spec.Size(); size > s.cfg.MaxSweepPoints {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("sweep of %d points exceeds the %d-point cap", size, s.cfg.MaxSweepPoints))
		return
	}
	points, err := spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results, err := s.engine.RunPoints(ctx, points)
	if err != nil {
		writeRunError(w, r.Context(), err)
		return
	}
	s.sweepsRun.Inc()
	s.sweepPts.Add(uint64(len(results)))

	resp := SweepResponse{Name: spec.Name, Size: len(results), Points: make([]SweepPoint, len(results))}
	for i, res := range results {
		resp.Points[i] = SweepPoint{
			Index:    res.Index,
			Label:    res.Label,
			CacheHit: res.CacheHit,
			Result:   res,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
