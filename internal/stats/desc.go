package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics. It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Accumulator collects a stream of observations with Welford's online
// algorithm, so simulators can track means and variances without storing
// samples.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN records the same observation n times (useful for weighted bins).
func (a *Accumulator) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		a.Add(x)
	}
}

// N reports the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean reports the running mean (NaN when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance reports the unbiased running variance (NaN for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the running standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest observation (NaN when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max reports the largest observation (NaN when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Merge folds another accumulator into a (Chan et al. parallel update), so
// per-goroutine accumulators can be combined after a parallel sweep.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point      float64
	Lo, Hi     float64
	Confidence float64 // e.g. 0.95
}

// HalfWidth reports the interval's half width.
func (c CI) HalfWidth() float64 { return (c.Hi - c.Lo) / 2 }

// Contains reports whether x lies inside the interval.
func (c CI) Contains(x float64) bool { return x >= c.Lo && x <= c.Hi }

// RelativeHalfWidth reports the half width divided by |Point| — the
// relative-precision figure replication studies stop on. A degenerate
// interval (half width 0) is 0 even at Point 0; otherwise a zero point
// estimate yields +Inf, since no finite interval is relatively tight
// around zero.
func (c CI) RelativeHalfWidth() float64 {
	hw := c.HalfWidth()
	if hw == 0 {
		return 0
	}
	p := math.Abs(c.Point)
	if p == 0 {
		return math.Inf(1)
	}
	return hw / p
}

func (c CI) String() string {
	return fmt.Sprintf("%.6g [%.6g, %.6g] @%.0f%%", c.Point, c.Lo, c.Hi, c.Confidence*100)
}

// MeanCI computes a confidence interval for the mean of the accumulated
// observations using the Student-t critical value. Supported confidence
// levels are 0.90, 0.95 and 0.99; other values fall back to 0.95.
func (a *Accumulator) MeanCI(confidence float64) CI {
	m := a.Mean()
	if a.n < 2 {
		return CI{Point: m, Lo: math.Inf(-1), Hi: math.Inf(1), Confidence: confidence}
	}
	se := a.StdDev() / math.Sqrt(float64(a.n))
	t := tCritical(confidence, a.n-1)
	return CI{Point: m, Lo: m - t*se, Hi: m + t*se, Confidence: confidence}
}

// ProportionCI computes a normal-approximation (Wald) confidence interval
// for a binomial proportion with successes out of trials, clamped to [0,1].
// The queueing validation tests use it for loss probabilities.
func ProportionCI(successes, trials int64, confidence float64) CI {
	if trials == 0 {
		return CI{Point: math.NaN(), Lo: 0, Hi: 1, Confidence: confidence}
	}
	p := float64(successes) / float64(trials)
	z := zCritical(confidence)
	se := math.Sqrt(p * (1 - p) / float64(trials))
	lo := p - z*se
	hi := p + z*se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return CI{Point: p, Lo: lo, Hi: hi, Confidence: confidence}
}

// tCritical returns the two-sided Student-t critical value for the given
// confidence and degrees of freedom, via a small table plus the normal
// limit. Accuracy is more than sufficient for simulation reporting.
func tCritical(confidence float64, df int64) float64 {
	type row struct {
		df            int64
		t90, t95, t99 float64
	}
	table := []row{
		{1, 6.314, 12.706, 63.657},
		{2, 2.920, 4.303, 9.925},
		{3, 2.353, 3.182, 5.841},
		{4, 2.132, 2.776, 4.604},
		{5, 2.015, 2.571, 4.032},
		{6, 1.943, 2.447, 3.707},
		{7, 1.895, 2.365, 3.499},
		{8, 1.860, 2.306, 3.355},
		{9, 1.833, 2.262, 3.250},
		{10, 1.812, 2.228, 3.169},
		{12, 1.782, 2.179, 3.055},
		{15, 1.753, 2.131, 2.947},
		{20, 1.725, 2.086, 2.845},
		{25, 1.708, 2.060, 2.787},
		{30, 1.697, 2.042, 2.750},
		{40, 1.684, 2.021, 2.704},
		{60, 1.671, 2.000, 2.660},
		{120, 1.658, 1.980, 2.617},
	}
	pick := func(r row) float64 {
		switch {
		case confidence >= 0.985:
			return r.t99
		case confidence >= 0.925:
			return r.t95
		case confidence >= 0.85:
			return r.t90
		default:
			return r.t95
		}
	}
	for _, r := range table {
		if df <= r.df {
			return pick(r)
		}
	}
	return zCritical(confidence)
}

// zCritical returns the two-sided standard-normal critical value.
func zCritical(confidence float64) float64 {
	switch {
	case confidence >= 0.985:
		return 2.5758
	case confidence >= 0.925:
		return 1.9600
	case confidence >= 0.85:
		return 1.6449
	default:
		return 1.9600
	}
}

// BatchMeans splits a time-ordered series into nbatch equal batches and
// returns the batch means — the classic variance-reduction device for
// estimating steady-state confidence intervals from one long run. Trailing
// observations that do not fill a batch are dropped. It returns nil if the
// series cannot fill nbatch batches with at least one point each.
func BatchMeans(series []float64, nbatch int) []float64 {
	if nbatch <= 0 || len(series) < nbatch {
		return nil
	}
	size := len(series) / nbatch
	out := make([]float64, 0, nbatch)
	for b := 0; b < nbatch; b++ {
		out = append(out, Mean(series[b*size:(b+1)*size]))
	}
	return out
}

// RelativeError reports |got-want|/|want|, with the convention that a want
// of zero yields |got| (absolute error) to stay finite.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Autocorrelation estimates the lag-k autocorrelation of a series — the
// burstiness fingerprint separating MMPP-like correlated traffic from
// renewal processes. It returns NaN for series shorter than k+2 points or
// with zero variance.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || n < lag+2 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - m)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
