package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceBasic(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %g", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %g", got)
	}
}

func TestEmptyAndSmallInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of one point should be NaN")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("Min/Max of empty input wrong")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %g", got)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	s := NewStream(77, "acc")
	xs := make([]float64, 0, 5000)
	var acc Accumulator
	for i := 0; i < 5000; i++ {
		x := s.NormFloat64()*3 + 10
		xs = append(xs, x)
		acc.Add(x)
	}
	if rel := RelativeError(acc.Mean(), Mean(xs)); rel > 1e-12 {
		t.Fatalf("accumulator mean mismatch: %g vs %g", acc.Mean(), Mean(xs))
	}
	if rel := RelativeError(acc.Variance(), Variance(xs)); rel > 1e-9 {
		t.Fatalf("accumulator variance mismatch: %g vs %g", acc.Variance(), Variance(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Fatal("accumulator min/max mismatch")
	}
	if acc.N() != 5000 {
		t.Fatalf("N = %d", acc.N())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Fatal("empty accumulator should report NaN")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	s := NewStream(5, "merge")
	var all, a, b Accumulator
	for i := 0; i < 3000; i++ {
		x := s.Float64() * 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if rel := RelativeError(a.Mean(), all.Mean()); rel > 1e-12 {
		t.Fatalf("merged mean %g vs %g", a.Mean(), all.Mean())
	}
	if rel := RelativeError(a.Variance(), all.Variance()); rel > 1e-9 {
		t.Fatalf("merged variance %g vs %g", a.Variance(), all.Variance())
	}
	// Merging an empty accumulator is a no-op.
	var empty Accumulator
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatal("merging empty changed accumulator")
	}
	// Merging into an empty accumulator copies.
	var dst Accumulator
	dst.Merge(&all)
	if dst != all {
		t.Fatal("merge into empty did not copy")
	}
}

func TestAddN(t *testing.T) {
	var a Accumulator
	a.AddN(4, 3)
	if a.N() != 3 || a.Mean() != 4 {
		t.Fatalf("AddN wrong: n=%d mean=%g", a.N(), a.Mean())
	}
}

func TestMeanCICoverage(t *testing.T) {
	// 95 % CI should contain the true mean roughly 95 % of the time.
	s := NewStream(31, "ci")
	hits := 0
	const trials = 400
	for tr := 0; tr < trials; tr++ {
		var acc Accumulator
		for i := 0; i < 50; i++ {
			acc.Add(s.NormFloat64()*2 + 7)
		}
		if acc.MeanCI(0.95).Contains(7) {
			hits++
		}
	}
	cov := float64(hits) / trials
	if cov < 0.90 || cov > 0.99 {
		t.Fatalf("95%% CI coverage = %.3f", cov)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	var a Accumulator
	a.Add(1)
	ci := a.MeanCI(0.95)
	if !math.IsInf(ci.Lo, -1) || !math.IsInf(ci.Hi, 1) {
		t.Fatal("single-point CI should be infinite")
	}
}

func TestProportionCI(t *testing.T) {
	ci := ProportionCI(50, 1000, 0.95)
	if math.Abs(ci.Point-0.05) > 1e-12 {
		t.Fatalf("point = %g", ci.Point)
	}
	if ci.Lo < 0 || ci.Hi > 1 || ci.Lo >= ci.Hi {
		t.Fatalf("bad interval %+v", ci)
	}
	if !ci.Contains(0.05) {
		t.Fatal("CI must contain its point estimate")
	}
	empty := ProportionCI(0, 0, 0.95)
	if !math.IsNaN(empty.Point) {
		t.Fatal("empty proportion should be NaN")
	}
	// Extremes clamp.
	full := ProportionCI(10, 10, 0.95)
	if full.Hi > 1 {
		t.Fatal("CI exceeded 1")
	}
}

func TestCIHalfWidth(t *testing.T) {
	ci := CI{Point: 5, Lo: 4, Hi: 6, Confidence: 0.95}
	if ci.HalfWidth() != 1 {
		t.Fatalf("half width = %g", ci.HalfWidth())
	}
	if ci.String() == "" {
		t.Fatal("empty CI string")
	}
}

func TestTCriticalMonotone(t *testing.T) {
	// t critical values shrink with df and grow with confidence.
	if tCritical(0.95, 1) <= tCritical(0.95, 10) {
		t.Fatal("t should shrink with df")
	}
	if tCritical(0.99, 10) <= tCritical(0.95, 10) {
		t.Fatal("t should grow with confidence")
	}
	if tCritical(0.95, 10_000) != zCritical(0.95) {
		t.Fatal("large df should hit normal limit")
	}
	// Unknown confidence falls back to 95 %.
	if tCritical(0.5, 10) != tCritical(0.95, 10) {
		t.Fatal("fallback confidence broken")
	}
}

func TestBatchMeans(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6, 7}
	bm := BatchMeans(series, 3)
	want := []float64{1.5, 3.5, 5.5} // batches of 2, trailing 7 dropped
	if len(bm) != 3 {
		t.Fatalf("len = %d", len(bm))
	}
	for i := range bm {
		if bm[i] != want[i] {
			t.Fatalf("batch %d = %g, want %g", i, bm[i], want[i])
		}
	}
	if BatchMeans(series, 0) != nil || BatchMeans(series, 8) != nil {
		t.Fatal("degenerate batch inputs should yield nil")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(11, 10) != 0.1 {
		t.Fatal("basic relative error")
	}
	if RelativeError(0.5, 0) != 0.5 {
		t.Fatal("zero-want convention")
	}
}

func TestAccumulatorMergeProperty(t *testing.T) {
	// Property: merging any split of a sequence reproduces the whole.
	f := func(raw []uint16, cut uint8) bool {
		if len(raw) < 2 {
			return true
		}
		k := int(cut) % len(raw)
		var whole, left, right Accumulator
		for i, v := range raw {
			x := float64(v)
			whole.Add(x)
			if i < k {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		if left.N() != whole.N() {
			return false
		}
		return RelativeError(left.Mean(), whole.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A perfectly alternating series has lag-1 autocorrelation ~ -1.
	alt := make([]float64, 1000)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if ac := Autocorrelation(alt, 1); ac > -0.99 {
		t.Fatalf("alternating lag-1 ac = %g", ac)
	}
	// IID noise has near-zero autocorrelation at any lag.
	s := NewStream(3, "ac")
	iid := make([]float64, 20000)
	for i := range iid {
		iid[i] = s.NormFloat64()
	}
	for _, lag := range []int{1, 5, 20} {
		if ac := Autocorrelation(iid, lag); math.Abs(ac) > 0.03 {
			t.Fatalf("iid lag-%d ac = %g", lag, ac)
		}
	}
	// A slowly drifting series is positively correlated.
	drift := make([]float64, 1000)
	v := 0.0
	for i := range drift {
		v += s.NormFloat64() * 0.1
		drift[i] = v
	}
	if ac := Autocorrelation(drift, 1); ac < 0.9 {
		t.Fatalf("random-walk lag-1 ac = %g", ac)
	}
	// Degenerate inputs.
	if !math.IsNaN(Autocorrelation([]float64{1, 2}, 5)) {
		t.Fatal("short series should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{3, 3, 3, 3}, 1)) {
		t.Fatal("constant series should be NaN")
	}
	if !math.IsNaN(Autocorrelation(nil, -1)) {
		t.Fatal("negative lag should be NaN")
	}
}
