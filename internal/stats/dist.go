package stats

import (
	"fmt"
	"math"
	"sort"
)

// Distribution is a positive continuous distribution used for service times
// and inter-arrival times. Implementations must be safe for concurrent use
// as long as each goroutine supplies its own *Stream.
type Distribution interface {
	// Sample draws one variate using the supplied stream.
	Sample(s *Stream) float64
	// Mean reports the distribution mean.
	Mean() float64
	// Var reports the distribution variance (may be +Inf).
	Var() float64
	// String describes the distribution for logs and reports.
	String() string
}

// SCV reports the squared coefficient of variation Var/Mean² of d, the
// standard queueing-theory measure of service-time variability (1 for
// exponential, 0 for deterministic). It returns NaN for zero-mean
// distributions.
func SCV(d Distribution) float64 {
	m := d.Mean()
	if m == 0 {
		return math.NaN()
	}
	return d.Var() / (m * m)
}

// Exponential is the exponential distribution with the given rate (so mean
// 1/Rate). It is the service-time distribution implied by the paper's
// "average serving rate" inputs and the inter-arrival distribution of a
// Poisson process.
type Exponential struct {
	Rate float64
}

// NewExponential returns an exponential distribution with mean 1/rate.
// It panics if rate is not positive.
func NewExponential(rate float64) Exponential {
	if rate <= 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("stats: exponential rate must be positive, got %v", rate))
	}
	return Exponential{Rate: rate}
}

func (e Exponential) Sample(s *Stream) float64 { return s.ExpFloat64() / e.Rate }
func (e Exponential) Mean() float64            { return 1 / e.Rate }
func (e Exponential) Var() float64             { return 1 / (e.Rate * e.Rate) }
func (e Exponential) String() string           { return fmt.Sprintf("Exp(rate=%g)", e.Rate) }

// Deterministic always returns Value. It models constant per-request demand
// and is the zero-variance end of the generality the Erlang loss formula is
// insensitive to.
type Deterministic struct {
	Value float64
}

func (d Deterministic) Sample(*Stream) float64 { return d.Value }
func (d Deterministic) Mean() float64          { return d.Value }
func (d Deterministic) Var() float64           { return 0 }
func (d Deterministic) String() string         { return fmt.Sprintf("Det(%g)", d.Value) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

func (u Uniform) Sample(s *Stream) float64 { return u.Lo + (u.Hi-u.Lo)*s.Float64() }
func (u Uniform) Mean() float64            { return (u.Lo + u.Hi) / 2 }
func (u Uniform) Var() float64             { d := u.Hi - u.Lo; return d * d / 12 }
func (u Uniform) String() string           { return fmt.Sprintf("U[%g,%g]", u.Lo, u.Hi) }

// Pareto is the Lomax (shifted Pareto) distribution with shape Alpha and
// scale Xm, giving heavy-tailed demand. For Alpha <= 2 the variance is
// infinite; for Alpha <= 1 so is the mean. Heavy tails let the test suite
// probe the "general steady distribution" assumption of the model and the
// Paxson & Floyd non-Poisson critique the paper cites.
type Pareto struct {
	Xm    float64 // scale (minimum value), > 0
	Alpha float64 // tail index, > 0
}

func (p Pareto) Sample(s *Stream) float64 {
	u := 1 - s.Float64() // in (0, 1]
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

func (p Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha) }

// ParetoWithMean builds a Pareto distribution with the requested mean and
// tail index alpha > 1.
func ParetoWithMean(mean, alpha float64) Pareto {
	if alpha <= 1 {
		panic("stats: ParetoWithMean requires alpha > 1")
	}
	return Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}
}

// HyperExp is a two-phase hyperexponential distribution: with probability P1
// the variate is Exp(Rate1), otherwise Exp(Rate2). It produces SCV > 1,
// modelling bimodal request demand (e.g. cache hit vs. disk miss).
type HyperExp struct {
	P1           float64
	Rate1, Rate2 float64
}

func (h HyperExp) Sample(s *Stream) float64 {
	if s.Bernoulli(h.P1) {
		return s.ExpFloat64() / h.Rate1
	}
	return s.ExpFloat64() / h.Rate2
}

func (h HyperExp) Mean() float64 {
	return h.P1/h.Rate1 + (1-h.P1)/h.Rate2
}

func (h HyperExp) Var() float64 {
	// E[X²] for a mixture of exponentials: Σ pᵢ·2/rateᵢ².
	m2 := 2*h.P1/(h.Rate1*h.Rate1) + 2*(1-h.P1)/(h.Rate2*h.Rate2)
	m := h.Mean()
	return m2 - m*m
}

func (h HyperExp) String() string {
	return fmt.Sprintf("H2(p=%g,r1=%g,r2=%g)", h.P1, h.Rate1, h.Rate2)
}

// HyperExpWithSCV constructs a balanced-means two-phase hyperexponential
// with the requested mean and squared coefficient of variation scv >= 1.
func HyperExpWithSCV(mean, scv float64) HyperExp {
	if scv < 1 {
		panic("stats: HyperExpWithSCV requires scv >= 1")
	}
	if scv == 1 {
		// Degenerate: plain exponential split evenly.
		return HyperExp{P1: 0.5, Rate1: 1 / mean, Rate2: 1 / mean}
	}
	// Balanced means parameterization (Whitt): p1·mean1 = p2·mean2 = mean/2.
	p1 := 0.5 * (1 + math.Sqrt((scv-1)/(scv+1)))
	return HyperExp{
		P1:    p1,
		Rate1: 2 * p1 / mean,
		Rate2: 2 * (1 - p1) / mean,
	}
}

// ErlangK is the Erlang-k distribution (sum of k independent exponentials,
// each with the given per-phase Rate), producing SCV = 1/k < 1.
type ErlangK struct {
	K    int
	Rate float64 // per-phase rate; mean = K/Rate
}

// ErlangKWithMean builds an Erlang-k distribution with the requested mean.
func ErlangKWithMean(mean float64, k int) ErlangK {
	if k < 1 {
		panic("stats: ErlangKWithMean requires k >= 1")
	}
	return ErlangK{K: k, Rate: float64(k) / mean}
}

func (e ErlangK) Sample(s *Stream) float64 {
	sum := 0.0
	for i := 0; i < e.K; i++ {
		sum += s.ExpFloat64()
	}
	return sum / e.Rate
}

func (e ErlangK) Mean() float64  { return float64(e.K) / e.Rate }
func (e ErlangK) Var() float64   { return float64(e.K) / (e.Rate * e.Rate) }
func (e ErlangK) String() string { return fmt.Sprintf("Erlang(k=%d,rate=%g)", e.K, e.Rate) }

// LogNormal is the log-normal distribution parameterized by the mean Mu and
// standard deviation Sigma of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

func (l LogNormal) Sample(s *Stream) float64 {
	return math.Exp(l.Mu + l.Sigma*s.NormFloat64())
}

func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

func (l LogNormal) String() string { return fmt.Sprintf("LogN(mu=%g,sigma=%g)", l.Mu, l.Sigma) }

// Empirical samples uniformly from a fixed set of observed values — the
// trace-driven option for replaying measured per-request demands.
type Empirical struct {
	values []float64
	mean   float64
	vr     float64
}

// NewEmpirical copies values into an empirical distribution. It panics on an
// empty input.
func NewEmpirical(values []float64) *Empirical {
	if len(values) == 0 {
		panic("stats: NewEmpirical requires at least one value")
	}
	cp := append([]float64(nil), values...)
	sort.Float64s(cp)
	m := Mean(cp)
	return &Empirical{values: cp, mean: m, vr: Variance(cp)}
}

func (e *Empirical) Sample(s *Stream) float64 { return e.values[s.IntN(len(e.values))] }
func (e *Empirical) Mean() float64            { return e.mean }
func (e *Empirical) Var() float64             { return e.vr }
func (e *Empirical) String() string           { return fmt.Sprintf("Empirical(n=%d)", len(e.values)) }

// Quantile reports the q-quantile (0 <= q <= 1) of the empirical sample.
func (e *Empirical) Quantile(q float64) float64 { return quantileSorted(e.values, q) }

// Scaled wraps a distribution, multiplying every sample (and the mean and
// standard deviation) by Factor. It is how the virtualization layer applies
// an impact factor a to a native service-time distribution: serving rate
// μ·a corresponds to service times scaled by 1/a.
type Scaled struct {
	D      Distribution
	Factor float64
}

func (s Scaled) Sample(st *Stream) float64 { return s.D.Sample(st) * s.Factor }
func (s Scaled) Mean() float64             { return s.D.Mean() * s.Factor }
func (s Scaled) Var() float64              { return s.D.Var() * s.Factor * s.Factor }
func (s Scaled) String() string {
	return fmt.Sprintf("%g*%s", s.Factor, s.D.String())
}
