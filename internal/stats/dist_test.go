package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// checkMoments samples d and verifies mean (and, when finite, variance)
// against the analytic values.
func checkMoments(t *testing.T, d Distribution, n int, meanTol, varTol float64) {
	t.Helper()
	s := NewStream(123, "moments/"+d.String())
	var acc Accumulator
	for i := 0; i < n; i++ {
		x := d.Sample(s)
		if x < 0 {
			t.Fatalf("%s produced negative sample %g", d, x)
		}
		acc.Add(x)
	}
	if rel := RelativeError(acc.Mean(), d.Mean()); rel > meanTol {
		t.Errorf("%s: sample mean %.5g vs %.5g (rel %.4f)", d, acc.Mean(), d.Mean(), rel)
	}
	if v := d.Var(); !math.IsInf(v, 1) && varTol > 0 {
		if rel := RelativeError(acc.Variance(), v); rel > varTol {
			t.Errorf("%s: sample var %.5g vs %.5g (rel %.4f)", d, acc.Variance(), v, rel)
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	checkMoments(t, NewExponential(2.5), 200000, 0.02, 0.05)
	checkMoments(t, NewExponential(0.01), 200000, 0.02, 0.05)
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewExponential(%v) did not panic", rate)
				}
			}()
			NewExponential(rate)
		}()
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 3.5}
	s := NewStream(1, "det")
	for i := 0; i < 10; i++ {
		if d.Sample(s) != 3.5 {
			t.Fatal("Deterministic varied")
		}
	}
	if d.Var() != 0 || d.Mean() != 3.5 {
		t.Fatal("Deterministic moments wrong")
	}
	if SCV(d) != 0 {
		t.Fatalf("SCV(Det) = %g", SCV(d))
	}
}

func TestUniformMoments(t *testing.T) {
	checkMoments(t, Uniform{Lo: 1, Hi: 5}, 200000, 0.01, 0.03)
}

func TestParetoMoments(t *testing.T) {
	p := ParetoWithMean(2.0, 3.0)
	if rel := RelativeError(p.Mean(), 2.0); rel > 1e-12 {
		t.Fatalf("ParetoWithMean mean = %g", p.Mean())
	}
	checkMoments(t, p, 400000, 0.03, 0) // variance finite but slow to converge
	if SCV(p) <= 0 {
		t.Fatal("Pareto SCV not positive")
	}
}

func TestParetoInfiniteMoments(t *testing.T) {
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("alpha<=1 should have infinite mean")
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1.5}.Var(), 1) {
		t.Fatal("alpha<=2 should have infinite variance")
	}
}

func TestParetoWithMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ParetoWithMean(1, 1) did not panic")
		}
	}()
	ParetoWithMean(1, 1)
}

func TestHyperExpMomentsAndSCV(t *testing.T) {
	for _, scv := range []float64{1, 2, 5, 10} {
		h := HyperExpWithSCV(4.0, scv)
		if rel := RelativeError(h.Mean(), 4.0); rel > 1e-9 {
			t.Fatalf("H2(scv=%g) mean = %g", scv, h.Mean())
		}
		if rel := RelativeError(SCV(h), scv); rel > 1e-9 {
			t.Fatalf("H2(scv=%g) SCV = %g", scv, SCV(h))
		}
		checkMoments(t, h, 300000, 0.03, 0.1)
	}
}

func TestHyperExpWithSCVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HyperExpWithSCV(1, 0.5) did not panic")
		}
	}()
	HyperExpWithSCV(1, 0.5)
}

func TestErlangKMomentsAndSCV(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		e := ErlangKWithMean(3.0, k)
		if rel := RelativeError(e.Mean(), 3.0); rel > 1e-12 {
			t.Fatalf("Erlang(k=%d) mean = %g", k, e.Mean())
		}
		if rel := RelativeError(SCV(e), 1/float64(k)); rel > 1e-12 {
			t.Fatalf("Erlang(k=%d) SCV = %g", k, SCV(e))
		}
		checkMoments(t, e, 150000, 0.02, 0.05)
	}
}

func TestLogNormalMoments(t *testing.T) {
	checkMoments(t, LogNormal{Mu: 0.5, Sigma: 0.4}, 300000, 0.02, 0.08)
}

func TestEmpirical(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 3, 4})
	if e.Mean() != 2.5 {
		t.Fatalf("empirical mean = %g", e.Mean())
	}
	if got := e.Quantile(0.5); got != 2.5 {
		t.Fatalf("median = %g", got)
	}
	s := NewStream(2, "emp")
	for i := 0; i < 100; i++ {
		v := e.Sample(s)
		if v < 1 || v > 4 {
			t.Fatalf("empirical sample %g outside support", v)
		}
	}
}

func TestEmpiricalPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEmpirical(nil) did not panic")
		}
	}()
	NewEmpirical(nil)
}

func TestScaled(t *testing.T) {
	base := NewExponential(1)
	sc := Scaled{D: base, Factor: 2}
	if sc.Mean() != 2 || sc.Var() != 4 {
		t.Fatalf("scaled moments mean=%g var=%g", sc.Mean(), sc.Var())
	}
	// Scaling must preserve SCV.
	if rel := RelativeError(SCV(sc), SCV(base)); rel > 1e-12 {
		t.Fatal("scaling changed SCV")
	}
}

func TestScaledSampleProperty(t *testing.T) {
	// Property: for deterministic base, Scaled sample == factor*value.
	if err := quick.Check(func(v, f uint8) bool {
		base := Deterministic{Value: float64(v)}
		sc := Scaled{D: base, Factor: float64(f)}
		s := NewStream(1, "q")
		return sc.Sample(s) == float64(v)*float64(f)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSCVZeroMean(t *testing.T) {
	if !math.IsNaN(SCV(Deterministic{Value: 0})) {
		t.Fatal("SCV of zero-mean distribution should be NaN")
	}
}
