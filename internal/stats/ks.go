package stats

import (
	"fmt"
	"math"
	"sort"
)

// Kolmogorov–Smirnov goodness-of-fit machinery, used by the test suite to
// validate the variate generators against their nominal distributions
// (rather than checking means alone) and available to users for validating
// measured traces against modelling assumptions.

// KSResult is the outcome of a one-sample KS test.
type KSResult struct {
	// Statistic is D_n = sup |F_empirical − F|.
	Statistic float64
	// N is the sample size.
	N int
	// PValue is the asymptotic p-value from the Kolmogorov distribution
	// (accurate for N ≳ 35).
	PValue float64
}

// Reject reports whether the null hypothesis (sample drawn from the
// reference CDF) is rejected at the given significance level.
func (r KSResult) Reject(alpha float64) bool { return r.PValue < alpha }

func (r KSResult) String() string {
	return fmt.Sprintf("KS D=%.5f n=%d p=%.4f", r.Statistic, r.N, r.PValue)
}

// KSTest runs a one-sample Kolmogorov–Smirnov test of the sample against
// the reference CDF. The sample is copied and sorted.
func KSTest(sample []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(sample)
	if n == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test needs a sample")
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	d := 0.0
	for i, x := range xs {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return KSResult{}, fmt.Errorf("stats: reference CDF returned %g at %g", f, x)
		}
		upper := float64(i+1)/float64(n) - f
		lower := f - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return KSResult{
		Statistic: d,
		N:         n,
		PValue:    ksPValue(d, n),
	}, nil
}

// ksPValue evaluates the asymptotic Kolmogorov distribution
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²} with the standard small-sample
// correction λ = (√n + 0.12 + 0.11/√n)·D.
func ksPValue(d float64, n int) float64 {
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	if lambda < 1e-6 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ExponentialCDF returns the CDF of Exp(rate) for use with KSTest.
func ExponentialCDF(rate float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	}
}

// UniformCDF returns the CDF of U[lo, hi].
func UniformCDF(lo, hi float64) func(float64) float64 {
	return func(x float64) float64 {
		switch {
		case x <= lo:
			return 0
		case x >= hi:
			return 1
		default:
			return (x - lo) / (hi - lo)
		}
	}
}

// ParetoCDF returns the CDF of the Pareto distribution with scale xm and
// shape alpha.
func ParetoCDF(xm, alpha float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= xm {
			return 0
		}
		return 1 - math.Pow(xm/x, alpha)
	}
}
