package stats

import (
	"math"
	"testing"
)

func drawSample(d Distribution, n int, seed uint64) []float64 {
	s := NewStream(seed, "ks/"+d.String())
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(s)
	}
	return out
}

func TestKSAcceptsCorrectDistributions(t *testing.T) {
	cases := []struct {
		d   Distribution
		cdf func(float64) float64
	}{
		{NewExponential(2.5), ExponentialCDF(2.5)},
		{Uniform{Lo: 1, Hi: 4}, UniformCDF(1, 4)},
		{Pareto{Xm: 1, Alpha: 2.2}, ParetoCDF(1, 2.2)},
	}
	for _, c := range cases {
		res, err := KSTest(drawSample(c.d, 5000, 11), c.cdf)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.01) {
			t.Errorf("%s rejected against its own CDF: %s", c.d, res)
		}
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	// Exponential sample tested against a uniform CDF: decisive rejection.
	sample := drawSample(NewExponential(1), 5000, 13)
	res, err := KSTest(sample, UniformCDF(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Fatalf("wrong CDF accepted: %s", res)
	}
	// Wrong rate, same family: also rejected at this sample size.
	res, err = KSTest(sample, ExponentialCDF(1.3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Fatalf("wrong rate accepted: %s", res)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSTest(nil, ExponentialCDF(1)); err == nil {
		t.Fatal("empty sample accepted")
	}
	bad := func(float64) float64 { return 2 }
	if _, err := KSTest([]float64{1, 2}, bad); err == nil {
		t.Fatal("invalid CDF accepted")
	}
}

func TestKSPValueSane(t *testing.T) {
	// Tiny statistic: p near 1. Huge statistic: p near 0.
	if p := ksPValue(1e-9, 100); p < 0.99 {
		t.Fatalf("tiny D gave p=%g", p)
	}
	if p := ksPValue(0.5, 100); p > 1e-6 {
		t.Fatalf("huge D gave p=%g", p)
	}
	// Monotone decreasing in D.
	prev := 1.1
	for d := 0.01; d < 0.3; d += 0.01 {
		p := ksPValue(d, 200)
		if p > prev+1e-12 {
			t.Fatalf("p not decreasing at D=%g", d)
		}
		prev = p
	}
}

func TestKSStatisticExactTinySample(t *testing.T) {
	// Sample {0.5} against U[0,1]: D = max(1-0.5, 0.5-0) = 0.5.
	res, err := KSTest([]float64{0.5}, UniformCDF(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Statistic-0.5) > 1e-12 {
		t.Fatalf("D = %g, want 0.5", res.Statistic)
	}
}
