package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream without storing
// observations, using the P² algorithm of Jain & Chlamtac (1985): five
// markers track the minimum, the target quantile and intermediate
// positions, adjusted with parabolic interpolation as observations arrive.
// Memory is O(1); accuracy is excellent for smooth distributions and more
// than sufficient for simulation response-time percentiles.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments
	initial []float64
}

// NewP2Quantile tracks the q-quantile, q in (0, 1).
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: P2 quantile %v outside (0,1)", q))
	}
	est := &P2Quantile{p: q}
	est.pos = [5]float64{1, 2, 3, 4, 5}
	est.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	est.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return est
}

// Add records one observation.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if e.n <= 5 {
		e.initial = append(e.initial, x)
		if e.n == 5 {
			sort.Float64s(e.initial)
			copy(e.heights[:], e.initial)
			e.initial = nil
		}
		return
	}

	// Find the cell k containing x and update extreme heights.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			// Parabolic (P²) interpolation.
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				// Fall back to linear interpolation.
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	q := e.heights
	n := e.pos
	return q[i] + d/(n[i+1]-n[i-1])*((n[i]-n[i-1]+d)*(q[i+1]-q[i])/(n[i+1]-n[i])+
		(n[i+1]-n[i]-d)*(q[i]-q[i-1])/(n[i]-n[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	q := e.heights
	n := e.pos
	j := i + int(d)
	return q[i] + d*(q[j]-q[i])/(n[j]-n[i])
}

// Value reports the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic; with none it is
// NaN.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		cp := append([]float64(nil), e.initial...)
		sort.Float64s(cp)
		return quantileSorted(cp, e.p)
	}
	return e.heights[2]
}

// N reports the number of observations.
func (e *P2Quantile) N() int { return e.n }

// Quantile reports the tracked quantile level.
func (e *P2Quantile) Quantile() float64 { return e.p }
