package stats

import (
	"math"
	"sort"
	"testing"
)

func TestP2QuantileUniform(t *testing.T) {
	s := NewStream(1, "p2/uniform")
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		est := NewP2Quantile(q)
		for i := 0; i < 100000; i++ {
			est.Add(s.Float64())
		}
		if err := math.Abs(est.Value() - q); err > 0.01 {
			t.Errorf("uniform q=%g: estimate %.4f (err %.4f)", q, est.Value(), err)
		}
		if est.Quantile() != q {
			t.Fatal("quantile level lost")
		}
	}
}

func TestP2QuantileExponential(t *testing.T) {
	s := NewStream(2, "p2/exp")
	est := NewP2Quantile(0.95)
	for i := 0; i < 200000; i++ {
		est.Add(s.ExpFloat64())
	}
	want := -math.Log(0.05) // ≈ 2.996
	if RelativeError(est.Value(), want) > 0.03 {
		t.Fatalf("exp p95 = %.4f, want %.4f", est.Value(), want)
	}
}

func TestP2QuantileMatchesExactOnLargeSample(t *testing.T) {
	s := NewStream(3, "p2/cmp")
	est := NewP2Quantile(0.9)
	var xs []float64
	for i := 0; i < 50000; i++ {
		x := math.Exp(s.NormFloat64()) // lognormal: skewed
		est.Add(x)
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	exact := quantileSorted(xs, 0.9)
	if RelativeError(est.Value(), exact) > 0.05 {
		t.Fatalf("p90 = %.4f vs exact %.4f", est.Value(), exact)
	}
	if est.N() != 50000 {
		t.Fatalf("N = %d", est.N())
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	est := NewP2Quantile(0.5)
	if !math.IsNaN(est.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
	est.Add(3)
	if est.Value() != 3 {
		t.Fatalf("single value = %g", est.Value())
	}
	est.Add(1)
	est.Add(2)
	// Exact median of {1,2,3}.
	if est.Value() != 2 {
		t.Fatalf("median of 3 = %g", est.Value())
	}
}

func TestP2QuantileMonotoneInput(t *testing.T) {
	est := NewP2Quantile(0.5)
	for i := 1; i <= 1001; i++ {
		est.Add(float64(i))
	}
	// True median is 501.
	if RelativeError(est.Value(), 501) > 0.05 {
		t.Fatalf("median of 1..1001 = %g", est.Value())
	}
}

func TestP2QuantilePanicsOnBadLevel(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

func BenchmarkP2QuantileAdd(b *testing.B) {
	s := NewStream(7, "p2/bench")
	est := NewP2Quantile(0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Add(s.Float64())
	}
}
