package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary-least-squares straight-line fit
// y ≈ Intercept + Slope·x, as used by the paper to summarize impact factors
// ("we sum up the relationship ... using the linear regression",
// Section IV-C.1).
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int
}

func (f LinearFit) String() string {
	sign := "+"
	b := f.Intercept
	if b < 0 {
		sign, b = "-", -b
	}
	return fmt.Sprintf("y = %.4g*x %s %.4g (R2=%.4f, n=%d)", f.Slope, sign, b, f.R2, f.N)
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Intercept + f.Slope*x }

// ErrDegenerate reports a regression whose design matrix is singular
// (e.g. all x equal, or too few points).
var ErrDegenerate = errors.New("stats: degenerate regression input")

// LinearRegression fits y ≈ a + b·x by ordinary least squares. It requires
// at least two points with distinct x values.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: x/y length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, ErrDegenerate
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := 0; i < n; i++ {
			r := ys[i] - (intercept + slope*xs[i])
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// PolyFit is a polynomial fit y ≈ Σ Coeffs[k]·x^k.
type PolyFit struct {
	Coeffs []float64 // ascending degree
	R2     float64
	N      int
}

// At evaluates the polynomial at x by Horner's rule.
func (p PolyFit) At(x float64) float64 {
	v := 0.0
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		v = v*x + p.Coeffs[k]
	}
	return v
}

func (p PolyFit) String() string {
	return fmt.Sprintf("poly(deg=%d, R2=%.4f, n=%d)", len(p.Coeffs)-1, p.R2, p.N)
}

// PolynomialRegression fits a degree-d polynomial by solving the normal
// equations with Gaussian elimination and partial pivoting. It requires
// len(xs) > d distinct points.
func PolynomialRegression(xs, ys []float64, degree int) (PolyFit, error) {
	if len(xs) != len(ys) {
		return PolyFit{}, fmt.Errorf("stats: x/y length mismatch %d vs %d", len(xs), len(ys))
	}
	if degree < 0 || len(xs) <= degree {
		return PolyFit{}, ErrDegenerate
	}
	m := degree + 1
	// Normal equations: (XᵀX)c = Xᵀy with X the Vandermonde matrix.
	ata := make([][]float64, m)
	atb := make([]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m)
	}
	for k := range xs {
		pow := make([]float64, m)
		pow[0] = 1
		for j := 1; j < m; j++ {
			pow[j] = pow[j-1] * xs[k]
		}
		for i := 0; i < m; i++ {
			atb[i] += pow[i] * ys[k]
			for j := 0; j < m; j++ {
				ata[i][j] += pow[i] * pow[j]
			}
		}
	}
	coeffs, err := SolveLinearSystem(ata, atb)
	if err != nil {
		return PolyFit{}, err
	}
	fit := PolyFit{Coeffs: coeffs, N: len(xs)}
	my := Mean(ys)
	var ssTot, ssRes float64
	for k := range xs {
		d := ys[k] - my
		ssTot += d * d
		r := ys[k] - fit.At(xs[k])
		ssRes += r * r
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// SolveLinearSystem solves A·x = b in place (A and b are copied) using
// Gaussian elimination with partial pivoting. A must be square and
// len(b) == len(A).
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, ErrDegenerate
	}
	// Copy.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, ErrDegenerate
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrDegenerate
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= m[col][c] * x[c]
		}
		x[col] = sum / m[col][col]
	}
	return x, nil
}

// RationalSaturatingFit fits the paper's DB impact-factor form
//
//	a(v) ≈ C · v² / (1 + v²)
//
// (Section IV-C.1, Figure 8b) by least squares on the single parameter C,
// which has the closed-form solution C = Σ wᵢyᵢ / Σ wᵢ² with wᵢ = vᵢ²/(1+vᵢ²).
type RationalSaturatingFit struct {
	C  float64
	R2 float64
	N  int
}

// At evaluates the fitted curve at v.
func (r RationalSaturatingFit) At(v float64) float64 { return r.C * v * v / (1 + v*v) }

func (r RationalSaturatingFit) String() string {
	return fmt.Sprintf("a(v) = %.4g*v^2/(1+v^2) (R2=%.4f, n=%d)", r.C, r.R2, r.N)
}

// FitRationalSaturating performs the one-parameter fit described above.
func FitRationalSaturating(vs, ys []float64) (RationalSaturatingFit, error) {
	if len(vs) != len(ys) || len(vs) == 0 {
		return RationalSaturatingFit{}, ErrDegenerate
	}
	var num, den float64
	for i := range vs {
		w := vs[i] * vs[i] / (1 + vs[i]*vs[i])
		num += w * ys[i]
		den += w * w
	}
	if den == 0 {
		return RationalSaturatingFit{}, ErrDegenerate
	}
	fit := RationalSaturatingFit{C: num / den, N: len(vs)}
	my := Mean(ys)
	var ssTot, ssRes float64
	for i := range vs {
		d := ys[i] - my
		ssTot += d * d
		r := ys[i] - fit.At(vs[i])
		ssRes += r * r
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}
