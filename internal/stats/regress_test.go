package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1.082 - 0.012*x // the paper's Fig. 5(b) fit
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+0.012) > 1e-12 || math.Abs(fit.Intercept-1.082) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R2 = %g on exact data", fit.R2)
	}
	if fit.At(6) != 1.082-0.012*6 {
		t.Fatal("At() wrong")
	}
	if fit.String() == "" {
		t.Fatal("empty fit string")
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	s := NewStream(8, "noise")
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 2+3*x+s.NormFloat64()*0.5)
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.05 || math.Abs(fit.Intercept-2) > 0.5 {
		t.Fatalf("noisy fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %g", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not reported")
	}
	if _, err := LinearRegression([]float64{1}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("single point should be degenerate")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("constant x should be degenerate")
	}
}

func TestPolynomialRegressionExact(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - 2*x + 0.5*x*x
	}
	fit, err := PolynomialRegression(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0.5}
	for k, c := range want {
		if math.Abs(fit.Coeffs[k]-c) > 1e-9 {
			t.Fatalf("coeff %d = %g, want %g", k, fit.Coeffs[k], c)
		}
	}
	if fit.R2 < 1-1e-9 {
		t.Fatalf("R2 = %g", fit.R2)
	}
	if math.Abs(fit.At(4)-(1-8+8)) > 1e-9 {
		t.Fatal("Horner evaluation wrong")
	}
}

func TestPolynomialRegressionDegreeZero(t *testing.T) {
	fit, err := PolynomialRegression([]float64{1, 2, 3}, []float64{5, 5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeffs[0]-5) > 1e-12 {
		t.Fatalf("constant fit = %v", fit.Coeffs)
	}
}

func TestPolynomialRegressionErrors(t *testing.T) {
	if _, err := PolynomialRegression([]float64{1, 2}, []float64{1, 2}, 2); !errors.Is(err, ErrDegenerate) {
		t.Fatal("underdetermined fit should fail")
	}
	if _, err := PolynomialRegression([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("length mismatch not reported")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	b := []float64{8, -11, -3}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinearSystem(a, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("singular system should fail")
	}
	if _, err := SolveLinearSystem(nil, nil); !errors.Is(err, ErrDegenerate) {
		t.Fatal("empty system should fail")
	}
	if _, err := SolveLinearSystem([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("shape mismatch should fail")
	}
}

func TestSolveLinearSystemPropertyRoundTrip(t *testing.T) {
	// Property: for random diagonally dominant systems, A·x ≈ b.
	s := NewStream(17, "linsys")
	f := func(seed uint16) bool {
		n := 1 + int(seed)%6
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			rowSum := 0.0
			for j := range a[i] {
				a[i][j] = s.Float64()*2 - 1
				rowSum += math.Abs(a[i][j])
			}
			a[i][i] += rowSum + 1 // ensure dominance
			b[i] = s.Float64() * 10
		}
		x, err := SolveLinearSystem(a, b)
		if err != nil {
			return false
		}
		for i := range a {
			dot := 0.0
			for j := range a[i] {
				dot += a[i][j] * x[j]
			}
			if math.Abs(dot-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitRationalSaturatingExact(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(vs))
	for i, v := range vs {
		ys[i] = 1.85 * v * v / (1 + v*v) // the paper's Fig. 8(b) form
	}
	fit, err := FitRationalSaturating(vs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.C-1.85) > 1e-9 {
		t.Fatalf("C = %g", fit.C)
	}
	if fit.R2 < 1-1e-9 {
		t.Fatalf("R2 = %g", fit.R2)
	}
	if fit.String() == "" {
		t.Fatal("empty string")
	}
}

func TestFitRationalSaturatingErrors(t *testing.T) {
	if _, err := FitRationalSaturating(nil, nil); !errors.Is(err, ErrDegenerate) {
		t.Fatal("empty input should fail")
	}
	if _, err := FitRationalSaturating([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("mismatched input should fail")
	}
	if _, err := FitRationalSaturating([]float64{0}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("all-zero weights should fail")
	}
}

func TestLinearVsPolynomialAgreement(t *testing.T) {
	// Degree-1 polynomial regression must agree with LinearRegression.
	xs := []float64{0, 1, 2, 3, 4, 7, 9}
	ys := []float64{1, 2.9, 5.2, 7.1, 8.8, 15.3, 19.1}
	lin, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	poly, err := PolynomialRegression(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin.Intercept-poly.Coeffs[0]) > 1e-9 || math.Abs(lin.Slope-poly.Coeffs[1]) > 1e-9 {
		t.Fatalf("lin %+v vs poly %v", lin, poly.Coeffs)
	}
}
