// Package stats provides the numerical substrate for the consolidation
// library: deterministic random-number streams, the service-time and
// inter-arrival distributions used by the workload generators and queueing
// simulators, descriptive statistics with confidence intervals, and the
// least-squares fitting routines used to recover virtualization
// impact-factor curves (Section IV-C.1 of the paper).
//
// Everything here is pure Go standard library. All randomness flows through
// explicit *Stream values so that every simulation in the repository is
// reproducible from a single seed.
package stats

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random-number stream. Independent components of
// a simulation (arrival process, service times, dispatcher, failure
// injection, ...) should each draw from their own named substream so that
// changing one component's consumption pattern does not perturb the others —
// the standard common-random-numbers discipline for simulation experiments.
type Stream struct {
	rng  *rand.Rand
	seed uint64
	name string
}

// NewStream returns a stream seeded with seed. The name is recorded for
// diagnostics and substream derivation.
func NewStream(seed uint64, name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	mixed := splitmix64(seed ^ h.Sum64())
	return &Stream{
		rng:  rand.New(rand.NewPCG(mixed, splitmix64(mixed))),
		seed: seed,
		name: name,
	}
}

// Substream derives an independent stream from s keyed by name. Derivation
// is pure: the same (seed, path-of-names) always yields the same stream, and
// drawing from the substream does not advance s.
func (s *Stream) Substream(name string) *Stream {
	return NewStream(s.seed, s.name+"/"+name)
}

// Name reports the stream's derivation path.
func (s *Stream) Name() string { return s.name }

// Seed reports the root seed the stream was derived from.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.rng.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.rng.Uint64() }

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns a unit-mean exponential variate.
func (s *Stream) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Poisson returns a Poisson variate with the given mean. It uses Knuth's
// product method for small means and the PTRS transformed-rejection method
// of Hörmann for large means, so it stays O(1) as mean grows.
func (s *Stream) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		// Knuth: multiply uniforms until the product drops below e^-mean.
		limit := math.Exp(-mean)
		p := 1.0
		k := 0
		for {
			p *= s.rng.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	default:
		return s.poissonPTRS(mean)
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for Poisson variates with
// mean >= 10 (we use it from 30 up, well inside its validity range).
func (s *Stream) poissonPTRS(mu float64) int {
	b := 0.931 + 2.53*math.Sqrt(mu)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := s.rng.Float64() - 0.5
		v := s.rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		rhs := -mu + k*math.Log(mu) - logGamma(k+1)
		if lhs <= rhs {
			return int(k)
		}
	}
}

// logGamma is a thin wrapper over math.Lgamma discarding the sign (our
// arguments are always positive).
func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// splitmix64 is the SplitMix64 mixing function, used to decorrelate seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
