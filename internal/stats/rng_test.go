package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "arrivals")
	b := NewStream(42, "arrivals")
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with identical seed/name diverged at draw %d", i)
		}
	}
}

func TestStreamNameAffectsSequence(t *testing.T) {
	a := NewStream(42, "arrivals")
	b := NewStream(42, "services")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names produced %d/100 identical draws", same)
	}
}

func TestSubstreamIndependentOfParentConsumption(t *testing.T) {
	p1 := NewStream(7, "root")
	p2 := NewStream(7, "root")
	// Consume from p1 before deriving; p2 derives immediately.
	for i := 0; i < 10; i++ {
		p1.Float64()
	}
	s1 := p1.Substream("child")
	s2 := p2.Substream("child")
	for i := 0; i < 100; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatalf("substream depends on parent consumption at draw %d", i)
		}
	}
}

func TestSubstreamPathNaming(t *testing.T) {
	s := NewStream(1, "a").Substream("b").Substream("c")
	if got, want := s.Name(), "a/b/c"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	if s.Seed() != 1 {
		t.Fatalf("Seed() = %d, want 1", s.Seed())
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(3, "u")
	if err := quick.Check(func(k uint8) bool {
		u := s.Float64()
		return u >= 0 && u < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := NewStream(5, "bern")
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	// p = 0.3: expect roughly 30 % over many trials.
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %.4f", p)
	}
}

func TestPoissonMoments(t *testing.T) {
	s := NewStream(11, "poisson")
	for _, mean := range []float64{0.5, 3, 12, 29.9, 30, 80, 400} {
		var acc Accumulator
		n := 60000
		for i := 0; i < n; i++ {
			acc.Add(float64(s.Poisson(mean)))
		}
		if rel := RelativeError(acc.Mean(), mean); rel > 0.03 {
			t.Errorf("Poisson(%g): mean %.3f (rel err %.3f)", mean, acc.Mean(), rel)
		}
		// Poisson variance equals the mean.
		if rel := RelativeError(acc.Variance(), mean); rel > 0.06 {
			t.Errorf("Poisson(%g): variance %.3f (rel err %.3f)", mean, acc.Variance(), rel)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	s := NewStream(1, "p0")
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := s.Poisson(-4); got != 0 {
		t.Fatalf("Poisson(-4) = %d", got)
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := NewStream(9, "perm")
	p := s.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestSplitmix64Mixes(t *testing.T) {
	// Adjacent inputs should produce wildly different outputs.
	a, b := splitmix64(1), splitmix64(2)
	if a == b {
		t.Fatal("splitmix64 collision on adjacent inputs")
	}
	diff := 0
	for x := a ^ b; x != 0; x &= x - 1 {
		diff++
	}
	if diff < 16 {
		t.Fatalf("splitmix64(1)^splitmix64(2) has only %d differing bits", diff)
	}
}
