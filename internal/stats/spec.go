package stats

import (
	"fmt"
	"math"
)

// DistSpec is the declarative, JSON-serializable description of a
// Distribution: a kind tag plus the flat union of every kind's parameters.
// It is the codec scenario files use to name service-time, think-time and
// inter-arrival distributions without holding live Distribution values.
//
// Kinds and their parameters:
//
//	exponential    rate
//	deterministic  value
//	uniform        lo, hi
//	pareto         xm, alpha
//	hyperexp       p1, rate1, rate2
//	erlangk        k, rate
//	lognormal      mu, sigma
//	scaled         factor, of (a nested spec)
//
// Unused parameters must be left zero; Validate rejects out-of-domain
// values, and Build never panics on a validated spec.
type DistSpec struct {
	Kind string `json:"kind"`

	// exponential, erlangk (per-phase), hyperexp via Rate1/Rate2.
	Rate float64 `json:"rate,omitempty"`

	// deterministic.
	Value float64 `json:"value,omitempty"`

	// uniform.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`

	// pareto.
	Xm    float64 `json:"xm,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`

	// hyperexp.
	P1    float64 `json:"p1,omitempty"`
	Rate1 float64 `json:"rate1,omitempty"`
	Rate2 float64 `json:"rate2,omitempty"`

	// erlangk.
	K int `json:"k,omitempty"`

	// lognormal.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`

	// scaled.
	Factor float64   `json:"factor,omitempty"`
	Of     *DistSpec `json:"of,omitempty"`
}

// ErrInvalidSpec reports an unusable declarative spec.
var ErrInvalidSpec = fmt.Errorf("stats: invalid distribution spec")

// Clone returns a deep copy: mutating the copy (including a nested
// "scaled" chain) never touches the original.
func (s DistSpec) Clone() DistSpec {
	if s.Of != nil {
		of := s.Of.Clone()
		s.Of = &of
	}
	return s
}

func finitePositive(v float64) bool {
	return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks that the spec describes a buildable distribution.
func (s DistSpec) Validate() error {
	switch s.Kind {
	case "exponential":
		if !finitePositive(s.Rate) {
			return fmt.Errorf("%w: exponential rate %g", ErrInvalidSpec, s.Rate)
		}
	case "deterministic":
		if s.Value < 0 || !finite(s.Value) {
			return fmt.Errorf("%w: deterministic value %g", ErrInvalidSpec, s.Value)
		}
	case "uniform":
		if !finite(s.Lo) || !finite(s.Hi) || s.Lo < 0 || s.Hi < s.Lo {
			return fmt.Errorf("%w: uniform [%g, %g]", ErrInvalidSpec, s.Lo, s.Hi)
		}
	case "pareto":
		if !finitePositive(s.Xm) || !finitePositive(s.Alpha) {
			return fmt.Errorf("%w: pareto xm=%g alpha=%g", ErrInvalidSpec, s.Xm, s.Alpha)
		}
	case "hyperexp":
		if math.IsNaN(s.P1) || s.P1 < 0 || s.P1 > 1 {
			return fmt.Errorf("%w: hyperexp p1 %g", ErrInvalidSpec, s.P1)
		}
		if !finitePositive(s.Rate1) || !finitePositive(s.Rate2) {
			return fmt.Errorf("%w: hyperexp rates %g, %g", ErrInvalidSpec, s.Rate1, s.Rate2)
		}
	case "erlangk":
		if s.K < 1 {
			return fmt.Errorf("%w: erlangk k %d", ErrInvalidSpec, s.K)
		}
		if !finitePositive(s.Rate) {
			return fmt.Errorf("%w: erlangk rate %g", ErrInvalidSpec, s.Rate)
		}
	case "lognormal":
		if !finite(s.Mu) || !finite(s.Sigma) || s.Sigma < 0 {
			return fmt.Errorf("%w: lognormal mu=%g sigma=%g", ErrInvalidSpec, s.Mu, s.Sigma)
		}
	case "scaled":
		if !finitePositive(s.Factor) {
			return fmt.Errorf("%w: scale factor %g", ErrInvalidSpec, s.Factor)
		}
		if s.Of == nil {
			return fmt.Errorf("%w: scaled needs a nested spec", ErrInvalidSpec)
		}
		return s.Of.Validate()
	case "":
		return fmt.Errorf("%w: missing kind", ErrInvalidSpec)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalidSpec, s.Kind)
	}
	return nil
}

// Build materializes the distribution. It validates first, so it never
// panics; the returned Distribution is identical to one built through the
// package's constructors with the same parameters.
func (s DistSpec) Build() (Distribution, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case "exponential":
		return Exponential{Rate: s.Rate}, nil
	case "deterministic":
		return Deterministic{Value: s.Value}, nil
	case "uniform":
		return Uniform{Lo: s.Lo, Hi: s.Hi}, nil
	case "pareto":
		return Pareto{Xm: s.Xm, Alpha: s.Alpha}, nil
	case "hyperexp":
		return HyperExp{P1: s.P1, Rate1: s.Rate1, Rate2: s.Rate2}, nil
	case "erlangk":
		return ErlangK{K: s.K, Rate: s.Rate}, nil
	case "lognormal":
		return LogNormal{Mu: s.Mu, Sigma: s.Sigma}, nil
	case "scaled":
		inner, err := s.Of.Build()
		if err != nil {
			return nil, err
		}
		return Scaled{D: inner, Factor: s.Factor}, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q", ErrInvalidSpec, s.Kind)
}

// ExpSpec is shorthand for the exponential spec with the given rate.
func ExpSpec(rate float64) DistSpec { return DistSpec{Kind: "exponential", Rate: rate} }
