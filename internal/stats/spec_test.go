package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestDistSpecBuildMatchesConstructors(t *testing.T) {
	cases := []struct {
		spec DistSpec
		want Distribution
	}{
		{ExpSpec(1420), NewExponential(1420)},
		{DistSpec{Kind: "deterministic", Value: 2.5}, Deterministic{Value: 2.5}},
		{DistSpec{Kind: "uniform", Lo: 1, Hi: 3}, Uniform{Lo: 1, Hi: 3}},
		{DistSpec{Kind: "pareto", Xm: 0.5, Alpha: 2.5}, Pareto{Xm: 0.5, Alpha: 2.5}},
		{DistSpec{Kind: "hyperexp", P1: 0.25, Rate1: 2, Rate2: 0.5}, HyperExp{P1: 0.25, Rate1: 2, Rate2: 0.5}},
		{DistSpec{Kind: "erlangk", K: 4, Rate: 8}, ErlangKWithMean(0.5, 4)},
		{DistSpec{Kind: "lognormal", Mu: 0, Sigma: 1}, LogNormal{Mu: 0, Sigma: 1}},
		{DistSpec{Kind: "scaled", Factor: 2, Of: &DistSpec{Kind: "exponential", Rate: 1}},
			Scaled{D: Exponential{Rate: 1}, Factor: 2}},
	}
	for _, c := range cases {
		got, err := c.spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Kind, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: built %#v, want %#v", c.spec.Kind, got, c.want)
		}
	}
}

func TestDistSpecValidateRejects(t *testing.T) {
	bad := []DistSpec{
		{},
		{Kind: "gamma"},
		{Kind: "exponential"},
		{Kind: "exponential", Rate: -1},
		{Kind: "exponential", Rate: math.Inf(1)},
		{Kind: "deterministic", Value: -1},
		{Kind: "uniform", Lo: 3, Hi: 1},
		{Kind: "uniform", Lo: -1, Hi: 1},
		{Kind: "pareto", Xm: 0, Alpha: 1},
		{Kind: "hyperexp", P1: 1.5, Rate1: 1, Rate2: 1},
		{Kind: "hyperexp", P1: 0.5, Rate1: 0, Rate2: 1},
		{Kind: "erlangk", K: 0, Rate: 1},
		{Kind: "erlangk", K: 2, Rate: 0},
		{Kind: "lognormal", Sigma: -1},
		{Kind: "scaled", Factor: 2},
		{Kind: "scaled", Factor: 0, Of: &DistSpec{Kind: "exponential", Rate: 1}},
		{Kind: "scaled", Factor: 2, Of: &DistSpec{Kind: "exponential"}},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %+v validated", spec)
		}
		if _, err := spec.Build(); err == nil {
			t.Errorf("spec %+v built", spec)
		}
	}
}

func TestDistSpecJSONRoundTrip(t *testing.T) {
	spec := DistSpec{Kind: "scaled", Factor: 1.5, Of: &DistSpec{Kind: "hyperexp", P1: 0.3, Rate1: 2, Rate2: 0.25}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back DistSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip %+v -> %+v", spec, back)
	}
}
