package sweep

import (
	"context"
	"testing"
)

// benchSpec keeps both benchmarks microsecond-scale: simbench pins a fixed
// iteration count, so these must stay cheap.
func benchSpec(b *testing.B) Spec {
	b.Helper()
	sp, err := ParseSpecBytes([]byte(testSpecJSON))
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkSweepExpand measures grid expansion — the per-sweep fixed cost
// the engine pays before any simulation starts (JSON round-trips, strict
// re-parse and validation per point).
func BenchmarkSweepExpand(b *testing.B) {
	sp := benchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := sp.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 4 {
			b.Fatal("bad expansion")
		}
	}
}

// reproBenchSpec is a deliberately tiny whole-pipeline workload: two
// points, two replications each, sub-millisecond in total, so a fixed
// 20000x simbench run stays in seconds.
const reproBenchSpec = `{
  "name": "macro",
  "base": {
    "services": [
      {
        "profile": { "preset": "specweb-ecommerce" },
        "overhead": { "preset": "web" },
        "arrivals": { "kind": "poisson", "rate": 10 }
      }
    ],
    "fleet": { "hosts": 2 },
    "horizon": 2,
    "warmup": 0.5,
    "seed": 7,
    "replication": { "reps": 2, "workers": 1 }
  },
  "axes": [
    { "path": "services.0.arrivals.rate", "values": [10, 20] }
  ]
}`

// BenchmarkRepro measures the pipeline end to end — spec parse, compiled
// axis expansion, engine orchestration, replication fan-out, cluster
// simulation and summarization — the unit of work repro and the
// experiments pay per sweep point. Regressions invisible to the micro
// benchmarks (per-run rebuild cost, arena reuse, orchestration overhead)
// land here. The engine persists across iterations, as it does across a
// repro run, so arena reuse is on the measured path; the cache is off so
// every iteration simulates.
func BenchmarkRepro(b *testing.B) {
	eng := NewEngine(nil, nil, nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := ParseSpecBytes([]byte(reproBenchSpec))
		if err != nil {
			b.Fatal(err)
		}
		points, err := sp.Expand()
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.RunPoints(ctx, points)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 2 {
			b.Fatal("bad point count")
		}
	}
}

// BenchmarkSweepPointKey measures the content-address computation — paid
// once per point per run, hit or miss — on the engine's buffered path
// (one pointKeyer reused across the points of a RunPoints call).
func BenchmarkSweepPointKey(b *testing.B) {
	sp := benchSpec(b)
	ky := newPointKeyer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ky.key(sp.Base); err != nil {
			b.Fatal(err)
		}
	}
}
