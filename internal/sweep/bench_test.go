package sweep

import (
	"testing"
)

// benchSpec keeps both benchmarks microsecond-scale: simbench pins a fixed
// iteration count, so these must stay cheap.
func benchSpec(b *testing.B) Spec {
	b.Helper()
	sp, err := ParseSpecBytes([]byte(testSpecJSON))
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkSweepExpand measures grid expansion — the per-sweep fixed cost
// the engine pays before any simulation starts (JSON round-trips, strict
// re-parse and validation per point).
func BenchmarkSweepExpand(b *testing.B) {
	sp := benchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := sp.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 4 {
			b.Fatal("bad expansion")
		}
	}
}

// BenchmarkSweepPointKey measures the content-address computation — paid
// once per point per run, hit or miss.
func BenchmarkSweepPointKey(b *testing.B) {
	sp := benchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PointKey(sp.Base); err != nil {
			b.Fatal(err)
		}
	}
}
