package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/scenario"
)

// EngineVersion is the cache-key component invalidating every memoized
// result when the engine's semantics change. Bump it whenever the
// simulation physics, the scenario compiler, or the PointResult layout
// changes meaning.
const EngineVersion = "sweep-engine/v1"

// DefaultCacheDir is where the tools memoize completed points.
const DefaultCacheDir = "artifacts/cache"

// Cache is a content-addressed result store: one JSON file per key under
// <dir>/<key[:2]>/<key>.json, written atomically (temp file + rename) so a
// crashed run never leaves a truncated entry behind. A nil *Cache disables
// caching; every method is then a no-op.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir reports the cache root ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// envelope is the on-disk entry layout: the key is echoed so a moved or
// corrupted file can never satisfy the wrong lookup.
type envelope struct {
	Key    string          `json:"key"`
	Engine string          `json:"engine"`
	Value  json.RawMessage `json:"value"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get loads the value stored under key into out. Any failure — missing
// entry, unreadable file, mismatched key, undecodable value — is a miss:
// the caller recomputes and overwrites.
func (c *Cache) Get(key string, out any) bool {
	if c == nil || len(key) < 2 {
		return false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Key != key || env.Engine != EngineVersion {
		return false
	}
	return json.Unmarshal(env.Value, out) == nil
}

// Put stores value under key atomically.
func (c *Cache) Put(key string, value any) error {
	if c == nil {
		return nil
	}
	if len(key) < 2 {
		return fmt.Errorf("sweep: cache key %q too short", key)
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("sweep: encoding cache value: %w", err)
	}
	data, err := json.Marshal(envelope{Key: key, Engine: EngineVersion, Value: raw})
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp's 0600 would make the entry unreadable for other users
	// sharing the cache directory; entries are world-readable like any
	// other artifact.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		// A failed rename (read-only target, cross-device dir swap) must
		// not litter the cache with put-* files.
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Key hashes arbitrary string parts (plus the engine version) into a cache
// key — the generic form for memoizing non-scenario computations. Every
// parameter that influences the result, including the seed, must appear in
// the parts.
func Key(parts ...string) string {
	h := sha256.New()
	h.Write([]byte(EngineVersion))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// PointKey derives the content address of one scenario point: the SHA-256
// of (engine version, resolved scenario JSON, replication config). The
// replication worker and shard counts are zeroed and the event-queue
// selection blanked first — they change wall-clock time, never results,
// so they must not split the cache — and scenarios with a wall-clock
// timeout are not cacheable at all (the completed prefix depends on
// machine speed), which cacheablePoint guards.
func PointKey(s scenario.Scenario) (string, error) {
	return newPointKeyer().key(s)
}

// keyEnvelope is the hashed form of one point.
type keyEnvelope struct {
	Engine      string               `json:"engine"`
	Scenario    scenario.Scenario    `json:"scenario"`
	Replication scenario.Replication `json:"replication"`
}

// pointKeyer computes PointKey with reusable marshal buffers and
// heap-resident scratch (the envelope and normalized replication live in
// the keyer, so neither escapes per call), so keying the many points of
// one engine run stops allocating a fresh JSON blob per point. Not safe
// for concurrent use; the engine pools keyers.
type pointKeyer struct {
	buf bytes.Buffer
	enc *json.Encoder
	env keyEnvelope
	rep scenario.Replication
}

func newPointKeyer() *pointKeyer {
	k := &pointKeyer{}
	k.enc = json.NewEncoder(&k.buf)
	return k
}

// key returns the identical content address PointKey does — cache entries
// written by either path satisfy lookups from the other.
func (k *pointKeyer) key(s scenario.Scenario) (string, error) {
	s.ApplyDefaults()
	k.rep = *s.Replication
	k.rep.Workers = 0
	k.rep.Shards = 0
	s.Replication = &k.rep
	s.EventQueue = ""
	k.buf.Reset()
	k.env = keyEnvelope{EngineVersion, s, k.rep}
	if err := k.enc.Encode(&k.env); err != nil {
		return "", fmt.Errorf("sweep: encoding point key: %w", err)
	}
	blob := k.buf.Bytes()
	// Encoder appends a newline Marshal does not; hash the bare JSON so
	// keys match every cache entry written before the buffered path.
	blob = blob[:len(blob)-1]
	sum := sha256.Sum256(blob)
	var dst [2 * sha256.Size]byte
	hex.Encode(dst[:], sum[:])
	return string(dst[:]), nil
}

// cacheablePoint reports whether a point's result is machine-independent
// and therefore safe to memoize.
func cacheablePoint(s scenario.Scenario) bool {
	return s.Replication == nil || s.Replication.TimeoutSec == 0
}
