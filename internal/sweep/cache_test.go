package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPutEntriesWorldReadable: cache entries under a shared artifacts/cache
// must carry 0644, not the 0600 os.CreateTemp starts the temp file with —
// a cache another user cannot read is a cache that silently recomputes.
func TestPutEntriesWorldReadable(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cache-test", "permissions")
	if err := c.Put(key, map[string]int{"answer": 42}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o644 {
		t.Fatalf("cache entry mode = %04o, want 0644", got)
	}
	var out map[string]int
	if !c.Get(key, &out) || out["answer"] != 42 {
		t.Fatalf("round-trip failed: got %v", out)
	}
}

// TestPutRenameFailureLeavesNoTemp: when the final rename fails, Put must
// report the error and remove its temp file — the pre-fix behavior left a
// put-* orphan in the shard directory on every failed write.
func TestPutRenameFailureLeavesNoTemp(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cache-test", "rename-failure")
	// Occupy the entry path with a non-empty directory so os.Rename fails.
	if err := os.MkdirAll(filepath.Join(c.path(key), "blocker"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, 1); err == nil {
		t.Fatal("Put over a directory succeeded")
	}
	shard := filepath.Dir(c.path(key))
	entries, err := os.ReadDir(shard)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "put-") {
			t.Fatalf("failed Put left temp file %s behind", e.Name())
		}
	}
}
