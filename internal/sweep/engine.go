package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Engine executes sweep points against one shared worker pool, memoizing
// completed points in a content-addressed cache. The engine itself spawns
// one cheap orchestrator goroutine per point; only the simulation
// replications inside a point hold pool slots, so an engine-wide budget of
// N slots means at most N concurrently executing simulations no matter how
// many points or experiments are in flight.
type Engine struct {
	pool   *pool.Pool
	cache  *Cache
	reg    *obs.Registry
	arenas *cluster.ArenaPool
	// keyers shares pointKeyer marshal buffers across concurrent point
	// goroutines (a pointer: Scoped copies the Engine by value, and the
	// scoped view must reuse the same buffers, not copy the sync.Pool).
	keyers *sync.Pool
	scope  string
}

// NewEngine builds an engine over the given shared pool (nil = unbounded),
// cache (nil = always recompute) and registry (nil = a private one). The
// engine owns one arena pool shared by every point it runs, so
// consecutive points reuse simulator event storage instead of re-growing
// it (scoped views share the pool too).
func NewEngine(p *pool.Pool, c *Cache, reg *obs.Registry) *Engine {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Engine{
		pool:   p,
		cache:  c,
		reg:    reg,
		arenas: cluster.NewArenaPool(),
		keyers: &sync.Pool{New: func() any { return newPointKeyer() }},
	}
}

// Scoped returns a view of the engine whose progress counters carry the
// given scope name (e.g. the experiment ID), sharing the pool, cache and
// registry with the parent.
func (e *Engine) Scoped(scope string) *Engine {
	se := *e
	se.scope = scope
	return &se
}

// Pool exposes the shared concurrency budget (possibly nil).
func (e *Engine) Pool() *pool.Pool { return e.pool }

// Registry exposes the engine's metric registry (never nil).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Cache exposes the engine's result cache (possibly nil).
func (e *Engine) Cache() *Cache { return e.cache }

func (e *Engine) metric(name string) string {
	if e.scope == "" {
		return "sweep/" + name
	}
	return "sweep/" + e.scope + "/" + name
}

// RunPoints executes the given points, returning results in point order.
// Cached points are served from the content-addressed store without
// touching the pool; fresh points run their replications through the
// shared budget. The first error (by lowest point index) aborts the rest
// via context cancellation. Per-point progress lands in the engine
// registry as sweep[/scope]/points_done, cache_hits and cache_misses.
func (e *Engine) RunPoints(ctx context.Context, points []Point) ([]PointResult, error) {
	if err := validateIndices(points); err != nil {
		return nil, err
	}
	hits := e.reg.Counter(e.metric("cache_hits"))
	misses := e.reg.Counter(e.metric("cache_misses"))
	done := e.reg.Counter(e.metric("points_done"))
	writeErrs := e.reg.Counter(e.metric("cache_write_errors"))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]PointResult, len(points))
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = len(points)
	)
	fail := func(idx int, err error) {
		mu.Lock()
		if idx < errIdx {
			errIdx = idx
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(p Point) {
			defer wg.Done()
			res, err := e.runPoint(ctx, p, hits, misses, writeErrs)
			if err != nil {
				fail(p.Index, fmt.Errorf("point %d (%s): %w", p.Index, p.Label, err))
				return
			}
			results[p.Index] = res
			done.Inc()
		}(points[i])
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runPoint serves one point from cache or runs it fresh.
func (e *Engine) runPoint(ctx context.Context, p Point, hits, misses, writeErrs *obs.Counter) (PointResult, error) {
	cacheable := e.cache != nil && cacheablePoint(p.Scenario)
	var key string
	if cacheable {
		ky := e.keyers.Get().(*pointKeyer)
		k, err := ky.key(p.Scenario)
		e.keyers.Put(ky)
		if err != nil {
			return PointResult{}, err
		}
		key = k
		var res PointResult
		if e.cache.Get(key, &res) {
			hits.Inc()
			res.Index, res.Label, res.CacheHit = p.Index, p.Label, true
			return res, nil
		}
		misses.Inc()
	}

	c, err := p.Scenario.Compile()
	if err != nil {
		return PointResult{}, err
	}
	runCtx := ctx
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	rcfg := c.Replication
	rcfg.Pool = e.pool
	c.Cluster.Arenas = e.arenas

	set, err := cluster.Replications(runCtx, c.Cluster, rcfg)
	if err != nil {
		// A per-point wall-clock timeout keeps the completed prefix (that
		// is what TimeoutSec means); anything else — including the parent
		// context's own deadline or cancellation arriving first — aborts
		// the point.
		timedOut := timeoutKeepsPrefix(runCtx, ctx, err) && set != nil && len(set.Results) > 0
		if !timedOut {
			return PointResult{}, err
		}
	}
	res := summarize(set, c)
	res.Index, res.Label = p.Index, p.Label
	if cacheable {
		if err := e.cache.Put(key, res); err != nil {
			// A failed write only costs a future recompute.
			writeErrs.Inc()
		}
	}
	return res, nil
}

// validateIndices checks that the points' Index fields form exactly
// {0, ..., len-1}: results are returned in index order, so a gap or a
// duplicate (e.g. a hand-built list re-running only failed points) would
// otherwise index out of range or silently overwrite a neighbor.
func validateIndices(points []Point) error {
	seen := make([]bool, len(points))
	for i := range points {
		idx := points[i].Index
		if idx < 0 || idx >= len(points) {
			return fmt.Errorf("%w: point %d has index %d, want one of 0..%d",
				ErrInvalidSpec, i, idx, len(points)-1)
		}
		if seen[idx] {
			return fmt.Errorf("%w: duplicate point index %d", ErrInvalidSpec, idx)
		}
		seen[idx] = true
	}
	return nil
}

// timeoutKeepsPrefix classifies a replication-run error: true when the
// point's own wall-clock deadline fired, which keeps the completed
// replication prefix. The decision reads the point's runCtx, not the
// parent: a sibling failure cancelling the parent after this point's
// deadline has already fired must not turn a legitimate timeout into a
// hard error. A deadline on the parent itself (a global abort) is never
// the point's own timeout.
func timeoutKeepsPrefix(runCtx, parent context.Context, err error) bool {
	if runCtx == parent {
		// No per-point timeout was armed.
		return false
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return runCtx.Err() == context.DeadlineExceeded &&
		parent.Err() != context.DeadlineExceeded
}

// Go runs fn(0..n-1) concurrently, each call holding one pool slot, and
// returns the error of the lowest-index failure. It is the fan-out
// primitive for experiment stages that are not scenario points (analytic
// sweeps, queueing-level simulations).
func (e *Engine) Go(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := e.pool.Run(ctx, func() error { return fn(ctx, i) })
			if err != nil {
				mu.Lock()
				if i < errIdx {
					errIdx = i
					firstErr = err
				}
				mu.Unlock()
				cancel()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// Cached memoizes an arbitrary computation under an explicit key built
// with Key(...). The key must cover every input that influences the value,
// including seeds. With no cache configured it simply computes.
func Cached[T any](ctx context.Context, e *Engine, key string, compute func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	if e.cache != nil {
		var v T
		if e.cache.Get(key, &v) {
			e.reg.Counter(e.metric("cache_hits")).Inc()
			return v, nil
		}
		e.reg.Counter(e.metric("cache_misses")).Inc()
	}
	v, err := compute(ctx)
	if err != nil {
		return zero, err
	}
	if e.cache != nil {
		if err := e.cache.Put(key, v); err != nil {
			e.reg.Counter(e.metric("cache_write_errors")).Inc()
		}
	}
	return v, nil
}
