package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/scenario"
)

func expandTestSpec(t *testing.T) []Point {
	t.Helper()
	sp, err := ParseSpecBytes([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunPointsDeterministicAcrossWorkers is the golden determinism check:
// the serialized sweep results are byte-identical whether the shared pool
// has one slot or eight.
func TestRunPointsDeterministicAcrossWorkers(t *testing.T) {
	points := expandTestSpec(t)
	var blobs [][]byte
	for _, workers := range []int{1, 8} {
		p, err := pool.New(workers)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewEngine(p, nil, nil).RunPoints(context.Background(), points)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, mustJSON(t, res))
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Fatal("sweep results differ between workers=1 and workers=8")
	}
}

// TestCacheColdWarm pins the memoization contract: a warm rerun reproduces
// the cold run's results byte for byte, serving every point from cache.
func TestCacheColdWarm(t *testing.T) {
	points := expandTestSpec(t)
	dir := t.TempDir()
	p, err := pool.New(4)
	if err != nil {
		t.Fatal(err)
	}

	run := func() ([]PointResult, *Engine) {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(p, cache, nil)
		res, err := e.RunPoints(context.Background(), points)
		if err != nil {
			t.Fatal(err)
		}
		return res, e
	}

	cold, coldEng := run()
	snap := coldEng.Registry().Snapshot()
	if snap.Counters["sweep/cache_misses"] != uint64(len(points)) {
		t.Fatalf("cold misses = %d, want %d", snap.Counters["sweep/cache_misses"], len(points))
	}
	if snap.Counters["sweep/cache_hits"] != 0 {
		t.Fatalf("cold hits = %d, want 0", snap.Counters["sweep/cache_hits"])
	}

	warm, warmEng := run()
	snap = warmEng.Registry().Snapshot()
	if snap.Counters["sweep/cache_hits"] != uint64(len(points)) {
		t.Fatalf("warm hits = %d, want %d", snap.Counters["sweep/cache_hits"], len(points))
	}
	for i, r := range warm {
		if !r.CacheHit {
			t.Fatalf("warm point %d not served from cache", i)
		}
		if r.Label != points[i].Label {
			t.Fatalf("warm point %d label = %q, want %q", i, r.Label, points[i].Label)
		}
	}
	if string(mustJSON(t, cold)) != string(mustJSON(t, warm)) {
		t.Fatal("warm rerun differs from cold run")
	}
}

// TestRunPointsRejectsBadIndices: results land in a slice indexed by
// Point.Index, so a hand-built point list with gaps or duplicates must be
// rejected up front rather than silently overwriting a neighbor (or
// panicking out of range).
func TestRunPointsRejectsBadIndices(t *testing.T) {
	points := expandTestSpec(t)
	e := NewEngine(nil, nil, nil)
	ctx := context.Background()

	cases := []struct {
		name   string
		mutate func([]Point)
	}{
		{"duplicate", func(ps []Point) { ps[1].Index = 0 }},
		{"gap", func(ps []Point) { ps[1].Index = len(ps) }},
		{"negative", func(ps []Point) { ps[0].Index = -1 }},
	}
	for _, tc := range cases {
		bad := append([]Point(nil), points...)
		tc.mutate(bad)
		if _, err := e.RunPoints(ctx, bad); !errors.Is(err, ErrInvalidSpec) {
			t.Fatalf("%s indices: err = %v, want ErrInvalidSpec", tc.name, err)
		}
	}

	// A subset of a larger expansion keeps its original indices; it must be
	// rejected, not have its results shifted down.
	if _, err := e.RunPoints(ctx, points[1:3]); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("subset with original indices: err = %v, want ErrInvalidSpec", err)
	}
}

// TestTimeoutKeepsPrefixClassifier pins the decision table for "did this
// point's own wall-clock deadline fire": only that case keeps the
// completed replication prefix. Real contexts are used throughout —
// the classifier reads live ctx.Err() state, not error strings.
func TestTimeoutKeepsPrefixClassifier(t *testing.T) {
	background := context.Background()

	// No per-point timeout armed: never a prefix-keeping timeout, whatever
	// the error says.
	if timeoutKeepsPrefix(background, background, context.DeadlineExceeded) {
		t.Fatal("no timeout armed classified as point timeout")
	}

	// The point's own deadline fired while the parent stayed alive: the
	// canonical timeout, including when the error arrives wrapped.
	parent, cancelParent := context.WithCancel(background)
	defer cancelParent()
	runCtx, cancelRun := context.WithTimeout(parent, time.Nanosecond)
	defer cancelRun()
	<-runCtx.Done()
	if !timeoutKeepsPrefix(runCtx, parent, context.DeadlineExceeded) {
		t.Fatal("own deadline with live parent not classified as timeout")
	}
	if !timeoutKeepsPrefix(runCtx, parent, fmt.Errorf("replication 3: %w", context.DeadlineExceeded)) {
		t.Fatal("wrapped deadline error not classified as timeout")
	}
	if timeoutKeepsPrefix(runCtx, parent, errors.New("rng exhausted")) {
		t.Fatal("unrelated error classified as timeout")
	}

	// A sibling failure cancels the parent after this point's deadline has
	// already fired: still the point's own timeout. This is the case the
	// old `ctx.Err() == nil` check got wrong — it turned a legitimate
	// timeout into a hard error whenever any sibling failed concurrently.
	cancelParent()
	if runCtx.Err() != context.DeadlineExceeded {
		t.Fatalf("runCtx.Err() = %v after parent cancel, want DeadlineExceeded", runCtx.Err())
	}
	if !timeoutKeepsPrefix(runCtx, parent, context.DeadlineExceeded) {
		t.Fatal("deadline-then-parent-cancel not classified as timeout")
	}

	// The parent cancelled first: the deadline never got to fire on its
	// own, so the point aborts.
	parent2, cancelParent2 := context.WithCancel(background)
	runCtx2, cancelRun2 := context.WithTimeout(parent2, time.Hour)
	defer cancelRun2()
	cancelParent2()
	<-runCtx2.Done()
	if timeoutKeepsPrefix(runCtx2, parent2, runCtx2.Err()) {
		t.Fatal("parent cancellation classified as point timeout")
	}

	// The parent's own deadline (a global abort) is never the point's
	// timeout, even though both contexts report DeadlineExceeded.
	parent3, cancelParent3 := context.WithTimeout(background, time.Nanosecond)
	defer cancelParent3()
	<-parent3.Done()
	runCtx3, cancelRun3 := context.WithTimeout(parent3, time.Hour)
	defer cancelRun3()
	<-runCtx3.Done()
	if timeoutKeepsPrefix(runCtx3, parent3, context.DeadlineExceeded) {
		t.Fatal("global deadline classified as point timeout")
	}
}

func TestTimeoutPointsNeverCached(t *testing.T) {
	points := expandTestSpec(t)
	points = points[:1]
	points[0].Scenario.Replication.TimeoutSec = 60

	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(nil, cache, nil)
	if _, err := e.RunPoints(context.Background(), points); err != nil {
		t.Fatal(err)
	}
	entries := 0
	if err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			entries++
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if entries != 0 {
		t.Fatalf("timeout-bounded point wrote %d cache entries", entries)
	}
}

func TestPointKeySemantics(t *testing.T) {
	base := func() scenario.Scenario {
		sp, err := ParseSpecBytes([]byte(testSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		return sp.Base
	}

	a := base()
	b := base()
	b.Replication.Workers = 8
	ka, err := PointKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := PointKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("PointKey depends on the worker count")
	}

	c := base()
	c.Horizon = 99
	kc, err := PointKey(c)
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("PointKey ignores the horizon")
	}

	d := base()
	d.Seed = a.Seed + 1
	kd, err := PointKey(d)
	if err != nil {
		t.Fatal(err)
	}
	if kd == ka {
		t.Fatal("PointKey ignores the seed")
	}

	// Shard count and queue choice change wall-clock time, never results:
	// they must hit the same cache entry.
	e := base()
	e.Replication.Shards = 4
	e.EventQueue = "wheel"
	ke, err := PointKey(e)
	if err != nil {
		t.Fatal(err)
	}
	if ke != ka {
		t.Fatal("PointKey depends on shards or the event queue")
	}
}

// TestPointKeyerMatchesMarshal pins the buffered keyer to the original
// Marshal-based computation byte for byte — a drifting key would silently
// orphan every cache entry written before the buffered path existed.
func TestPointKeyerMatchesMarshal(t *testing.T) {
	sp, err := ParseSpecBytes([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ky := newPointKeyer()
	for _, p := range points {
		s := p.Scenario
		s.ApplyDefaults()
		rep := *s.Replication
		rep.Workers = 0
		rep.Shards = 0
		s.Replication = &rep
		s.EventQueue = ""
		blob, err := json.Marshal(struct {
			Engine      string               `json:"engine"`
			Scenario    scenario.Scenario    `json:"scenario"`
			Replication scenario.Replication `json:"replication"`
		}{EngineVersion, s, rep})
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(blob)
		want := hex.EncodeToString(sum[:])

		got, err := ky.key(p.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("point %d: buffered key %s, Marshal-based %s", p.Index, got, want)
		}
	}
}

func TestCachedHelper(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(nil, cache, nil)
	key := Key("unit", "cached-helper", "seed=7")

	calls := 0
	compute := func(context.Context) (float64, error) {
		calls++
		return 1.25, nil
	}
	for i := 0; i < 2; i++ {
		v, err := Cached(context.Background(), e, key, compute)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1.25 {
			t.Fatalf("call %d: v = %g", i, v)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestJFloatRoundTrip(t *testing.T) {
	values := []float64{0, 1.25, -3e-17, math.NaN(), math.Inf(1), math.Inf(-1), 0.1 + 0.2}
	for _, v := range values {
		blob, err := json.Marshal(JFloat(v))
		if err != nil {
			t.Fatalf("marshal %g: %v", v, err)
		}
		var back JFloat
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		got := float64(back)
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Fatalf("NaN round-tripped to %g", got)
			}
			continue
		}
		if got != v {
			t.Fatalf("%g round-tripped to %g via %s", v, got, blob)
		}
	}
}
