package sweep

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// JFloat is a float64 whose JSON form survives NaN and ±Inf: single-rep
// points carry infinite confidence bounds and an idle service's mean
// response time is NaN, and encoding/json refuses both. Finite values use
// the standard shortest round-trip encoding, so cached numbers are
// bit-exact.
type JFloat float64

// MarshalJSON encodes NaN and ±Inf as JSON strings, finite values as
// numbers.
func (f JFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts both the numeric and the string encodings.
func (f *JFloat) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"NaN"`:
		*f = JFloat(math.NaN())
		return nil
	case `"+Inf"`:
		*f = JFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = JFloat(math.Inf(-1))
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("sweep: bad JFloat %s: %w", data, err)
	}
	*f = JFloat(v)
	return nil
}

// Interval is a serializable confidence interval.
type Interval struct {
	Point JFloat `json:"point"`
	Lo    JFloat `json:"lo"`
	Hi    JFloat `json:"hi"`
}

// CI converts back to the stats form at the given confidence level.
func (iv Interval) CI(confidence float64) stats.CI {
	return stats.CI{
		Point:      float64(iv.Point),
		Lo:         float64(iv.Lo),
		Hi:         float64(iv.Hi),
		Confidence: confidence,
	}
}

func ival(ci stats.CI) Interval {
	return Interval{Point: JFloat(ci.Point), Lo: JFloat(ci.Lo), Hi: JFloat(ci.Hi)}
}

// ServicePoint is one service's cross-replication summary at a point.
type ServicePoint struct {
	Name       string   `json:"name"`
	Loss       Interval `json:"loss"`
	Throughput Interval `json:"throughput"`
	RespMean   Interval `json:"resp_mean"`
	RespP95    Interval `json:"resp_p95"`
	RespP99    Interval `json:"resp_p99"`

	// Arrivals, Served and Lost are per-replication means of the raw
	// counters.
	Arrivals float64 `json:"arrivals"`
	Served   float64 `json:"served"`
	Lost     float64 `json:"lost"`
}

// PointResult is the memoized outcome of one sweep point: everything the
// experiment layer reads from a replication study, in a form that
// round-trips through JSON bit-exactly. Index, Label and CacheHit describe
// the point's place in the current run and are deliberately excluded from
// the serialized (and therefore hashed/cached) form.
type PointResult struct {
	Index    int    `json:"-"`
	Label    string `json:"-"`
	CacheHit bool   `json:"-"`

	// Replications is the number of completed replications the summary
	// covers.
	Replications int  `json:"replications"`
	EarlyStopped bool `json:"early_stopped,omitempty"`

	Services []ServicePoint `json:"services"`

	OverallLoss     Interval `json:"overall_loss"`
	TotalThroughput Interval `json:"total_throughput"`
	BottleneckUtil  Interval `json:"bottleneck_util"`

	// Utilization maps each resource to its mean delivered-work fraction
	// across hosts and replications.
	Utilization map[string]JFloat `json:"utilization,omitempty"`

	// Window is the post-warmup observation duration in seconds.
	Window float64 `json:"window"`

	// EnergyBusyJ and EnergyIdleJ are per-replication mean busy and idle
	// energies over the window, in joules, under the point's compiled power
	// model and platform.
	EnergyBusyJ JFloat `json:"energy_busy_j"`
	EnergyIdleJ JFloat `json:"energy_idle_j"`

	// Hosts is the fleet size the point ran with.
	Hosts int `json:"hosts"`

	// Failures sums host failure events across replications.
	Failures int64 `json:"failures,omitempty"`
}

// Service returns the named service's summary, or nil.
func (pr *PointResult) Service(name string) *ServicePoint {
	for i := range pr.Services {
		if pr.Services[i].Name == name {
			return &pr.Services[i]
		}
	}
	return nil
}

// summarize folds a replication set into the serializable point form,
// attaching energy figures from the point's compiled power model.
func summarize(set *cluster.ReplicationSet, c scenario.Compiled) PointResult {
	pr := PointResult{
		Replications:    len(set.Results),
		EarlyStopped:    set.EarlyStopped,
		OverallLoss:     ival(set.OverallLoss),
		TotalThroughput: ival(set.TotalThroughput),
		BottleneckUtil:  ival(set.BottleneckUtil),
	}
	for i, svc := range set.Services {
		sp := ServicePoint{
			Name:       svc.Name,
			Loss:       ival(svc.Loss),
			Throughput: ival(svc.Throughput),
			RespMean:   ival(svc.RespMean),
			RespP95:    ival(svc.RespP95),
			RespP99:    ival(svc.RespP99),
		}
		for _, res := range set.Results {
			sm := res.Services[i]
			sp.Arrivals += float64(sm.Arrivals)
			sp.Served += float64(sm.Served)
			sp.Lost += float64(sm.Lost)
		}
		n := float64(len(set.Results))
		if n > 0 {
			sp.Arrivals /= n
			sp.Served /= n
			sp.Lost /= n
		}
		pr.Services = append(pr.Services, sp)
	}
	if len(set.Results) == 0 {
		return pr
	}

	first := set.Results[0]
	pr.Window = first.Window
	pr.Hosts = len(first.Hosts)

	util := map[string]float64{}
	for _, res := range set.Results {
		pr.Failures += res.Failures
		for name := range resourceNames(res) {
			util[name] += res.MeanUtilization(name)
		}
		busy, idle := res.Energy(c.Power, c.Platform)
		pr.EnergyBusyJ += JFloat(busy)
		pr.EnergyIdleJ += JFloat(idle)
	}
	n := JFloat(len(set.Results))
	pr.EnergyBusyJ /= n
	pr.EnergyIdleJ /= n
	if len(util) > 0 {
		pr.Utilization = make(map[string]JFloat, len(util))
		for _, name := range sortedKeys(util) {
			pr.Utilization[name] = JFloat(util[name] / float64(n))
		}
	}
	return pr
}

// resourceNames collects every resource any host reports.
func resourceNames(res *cluster.Result) map[string]bool {
	names := map[string]bool{}
	for _, h := range res.Hosts {
		for name := range h.Utilization {
			names[name] = true
		}
	}
	return names
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
