package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

// The compiled-setter expansion: each axis path is resolved against the
// scenario schema exactly once per spec, into a step program that stamps
// values directly into a typed Scenario clone. Expansion then costs one
// deep clone plus a handful of field writes per point instead of a full
// JSON marshal/unmarshal round-trip.
//
// Path semantics are identical to the old JSON-document walker:
//
//   - name segments address struct fields by their json tag (an unknown
//     name is a typo and fails compilation) or map keys;
//   - integer segments index slices, bounds-checked at apply time against
//     the point's actual slice;
//   - nil pointers on the way down are allocated, like stamping into a
//     JSON object that was absent.
//
// Scalar axis values (numbers, strings, bools landing in non-pointer
// scalar fields) are converted once at compile time through the json
// codec, so out-of-domain values (2.5 into an int field) fail with the
// same errors strict re-parsing produced. Composite values — and any
// value landing in a pointer field — keep their marshaled form and are
// strictly re-decoded per point, so unknown fields inside them are still
// rejected and no decoded state is ever shared between points.

type stepKind uint8

const (
	stepField stepKind = iota // struct field by index
	stepDeref                 // pointer: allocate when nil, then descend
	stepSlice                 // slice element, bounds-checked at apply time
	stepMap                   // map entry: copy out, descend, write back
)

type pathStep struct {
	kind  stepKind
	field int    // stepField
	index int    // stepSlice
	key   string // stepMap
}

// axisValue is one pre-converted axis value.
type axisValue struct {
	// scalar, when valid, is the value already converted to the target
	// type; it is copied into each point by Value.Set.
	scalar reflect.Value

	// raw is the marshaled form for composite or pointer targets,
	// strictly re-decoded into a fresh value at every apply.
	raw []byte
}

// compiledAxis is one axis resolved against the scenario schema.
type compiledAxis struct {
	path   string
	steps  []pathStep
	values []axisValue
	labels []string // "path=value" fragment per value
}

var scenarioType = reflect.TypeOf(scenario.Scenario{})

// compileAxis resolves the axis path against scenario.Scenario and
// pre-converts its values.
func compileAxis(ax Axis) (compiledAxis, error) {
	ca := compiledAxis{path: ax.Path}
	ca.steps = make([]pathStep, 0, strings.Count(ax.Path, ".")+2)
	t := scenarioType
	rest := ax.Path
	for rest != "" {
		seg := rest
		if dot := strings.IndexByte(rest, '.'); dot >= 0 {
			seg, rest = rest[:dot], rest[dot+1:]
		} else {
			rest = ""
		}
		// Descend through pointers before resolving the segment, like
		// json addressing through an object held by pointer.
		for t.Kind() == reflect.Pointer {
			ca.steps = append(ca.steps, pathStep{kind: stepDeref})
			t = t.Elem()
		}
		if numericSegment(seg) {
			if idx, err := strconv.Atoi(seg); err == nil {
				if t.Kind() != reflect.Slice {
					return ca, fmt.Errorf("segment %q indexes a non-array", seg)
				}
				if idx < 0 {
					return ca, fmt.Errorf("index %d out of range", idx)
				}
				ca.steps = append(ca.steps, pathStep{kind: stepSlice, index: idx})
				t = t.Elem()
				continue
			}
		}
		switch t.Kind() {
		case reflect.Struct:
			f, ok := fieldByJSONName(t, seg)
			if !ok {
				return ca, fmt.Errorf("unknown field %q in %s", seg, t.Name())
			}
			ca.steps = append(ca.steps, pathStep{kind: stepField, field: f})
			t = t.Field(f).Type
		case reflect.Map:
			if t.Key().Kind() != reflect.String {
				return ca, fmt.Errorf("segment %q addresses a non-string-keyed map", seg)
			}
			ca.steps = append(ca.steps, pathStep{kind: stepMap, key: seg})
			t = t.Elem()
		default:
			return ca, fmt.Errorf("segment %q addresses into a non-object", seg)
		}
	}

	ca.values = make([]axisValue, len(ax.Values))
	ca.labels = make([]string, len(ax.Values))
	for i, v := range ax.Values {
		raw, err := json.Marshal(v)
		if err != nil {
			return ca, fmt.Errorf("encoding value %v: %v", v, err)
		}
		av, err := convertAxisValue(v, raw, t)
		if err != nil {
			return ca, err
		}
		ca.values[i] = av
		ca.labels[i] = ax.Path + "=" + string(raw)
	}
	return ca, nil
}

// numericSegment reports whether the segment looks like an array index,
// gating the strconv call so plain field names never pay for a parse
// error allocation.
func numericSegment(seg string) bool {
	if seg == "" {
		return false
	}
	c := seg[0]
	return c == '-' || ('0' <= c && c <= '9')
}

// convertAxisValue prepares one axis value (and its marshaled form) for
// the target type through the json codec, so conversion errors match
// what a strict re-parse of the stamped document reported. Exact scalar
// matches skip the codec entirely.
func convertAxisValue(v any, raw []byte, t reflect.Type) (axisValue, error) {
	if sv, ok := fastScalar(v, t); ok {
		return axisValue{scalar: sv}, nil
	}
	switch t.Kind() {
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		// A scalar has no fields for strict decoding to reject; a plain
		// Unmarshal gives the same errors with fewer allocations.
		pv := reflect.New(t)
		if err := json.Unmarshal(raw, pv.Interface()); err != nil {
			return axisValue{}, err
		}
		return axisValue{scalar: pv.Elem()}, nil
	default:
		// Composite or pointer target: decode once now to fail fast on
		// malformed values, but keep the raw form — every apply decodes
		// fresh so points never share mutable state.
		if err := strictDecode(raw, reflect.New(t).Interface()); err != nil {
			return axisValue{}, err
		}
		return axisValue{raw: raw}, nil
	}
}

// fastScalar converts the common in-domain scalar shapes directly (a
// JSON number is a float64; integral targets require integral values,
// exactly as the codec does) and declines everything else — out-of-range
// or fractional values fall through to the json path so the error text
// stays the codec's.
func fastScalar(v any, t reflect.Type) (reflect.Value, bool) {
	const safeInt = 1 << 62
	switch t.Kind() {
	case reflect.Float32, reflect.Float64:
		if f, ok := v.(float64); ok {
			return reflect.ValueOf(f).Convert(t), true
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		f, ok := floatValue(v)
		if ok && f == math.Trunc(f) && f > -safeInt && f < safeInt {
			rv := reflect.New(t).Elem()
			if !rv.OverflowInt(int64(f)) {
				rv.SetInt(int64(f))
				return rv, true
			}
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		f, ok := floatValue(v)
		if ok && f >= 0 && f == math.Trunc(f) && f < safeInt {
			rv := reflect.New(t).Elem()
			if !rv.OverflowUint(uint64(f)) {
				rv.SetUint(uint64(f))
				return rv, true
			}
		}
	case reflect.String:
		if s, ok := v.(string); ok {
			return reflect.ValueOf(s).Convert(t), true
		}
	case reflect.Bool:
		if b, ok := v.(bool); ok {
			return reflect.ValueOf(b).Convert(t), true
		}
	}
	return reflect.Value{}, false
}

func floatValue(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		if int(float64(n)) == n { // exact in a float64
			return float64(n), true
		}
	}
	return 0, false
}

func strictDecode(raw []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// apply stamps value vi into the scenario.
func (ca *compiledAxis) apply(s *scenario.Scenario, vi int) error {
	return applySteps(reflect.ValueOf(s).Elem(), ca.steps, &ca.values[vi])
}

func applySteps(cur reflect.Value, steps []pathStep, val *axisValue) error {
	if len(steps) == 0 {
		return setTerminal(cur, val)
	}
	st := steps[0]
	switch st.kind {
	case stepField:
		return applySteps(cur.Field(st.field), steps[1:], val)
	case stepDeref:
		if cur.IsNil() {
			cur.Set(reflect.New(cur.Type().Elem()))
		}
		return applySteps(cur.Elem(), steps[1:], val)
	case stepSlice:
		if st.index >= cur.Len() {
			return fmt.Errorf("index %d out of range (array has %d elements)", st.index, cur.Len())
		}
		return applySteps(cur.Index(st.index), steps[1:], val)
	default: // stepMap: map values are not addressable — copy, descend, write back.
		if cur.IsNil() {
			cur.Set(reflect.MakeMap(cur.Type()))
		}
		key := reflect.ValueOf(st.key)
		tmp := reflect.New(cur.Type().Elem()).Elem()
		if mv := cur.MapIndex(key); mv.IsValid() {
			tmp.Set(mv)
		}
		if err := applySteps(tmp, steps[1:], val); err != nil {
			return err
		}
		cur.SetMapIndex(key, tmp)
		return nil
	}
}

func setTerminal(dst reflect.Value, val *axisValue) error {
	if val.scalar.IsValid() {
		dst.Set(val.scalar)
		return nil
	}
	pv := reflect.New(dst.Type())
	if err := strictDecode(val.raw, pv.Interface()); err != nil {
		return err
	}
	dst.Set(pv.Elem())
	return nil
}

func fieldByJSONName(t reflect.Type, name string) (int, bool) {
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if comma := strings.IndexByte(tag, ','); comma >= 0 {
			tag = tag[:comma]
		}
		if tag == name {
			return i, true
		}
	}
	return 0, false
}
