// Package sweep is the unified parameter-sweep engine: a declarative sweep
// spec (a base scenario plus named axes) expands into a deterministic grid
// of points, and one shared engine executes the points — and their
// replications — against a single process-wide worker pool, memoizing
// completed points in a content-addressed cache under artifacts/cache/.
//
// The paper's results are all sweeps (loss vs arrival rate, consolidation
// size vs utilization and power), so internal/experiments defines its
// figures as point lists over scenario.Scenario and funnels every
// simulation through Engine.RunPoints; cmd/simulate exposes the same
// machinery on JSON files via -sweep.
//
// Determinism contract: point i of a spec runs with seed
// PointSeed(rootSeed, i) unless the spec pins seeds explicitly, replication
// merging is order-independent, and the cache stores only seed-determined
// results — so a sweep's outcome is bit-identical for any worker count and
// any cache state.
package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/scenario"
)

// ErrInvalidSpec reports an unusable sweep spec.
var ErrInvalidSpec = errors.New("sweep: invalid spec")

// maxPoints bounds a single expansion; a grid beyond this is almost
// certainly a unit mistake in an axis.
const maxPoints = 100000

// Axis is one swept parameter: a dotted path into the scenario JSON
// ("fleet.hosts", "services.0.clients", "horizon") and the values to take.
type Axis struct {
	Path   string `json:"path"`
	Values []any  `json:"values"`
}

// Spec is the declarative sweep description: a base scenario plus axes.
// Expansion is row-major with the first axis outermost, so the point order
// — and therefore every derived seed — is a pure function of the spec.
type Spec struct {
	// Name labels the sweep in reports and manifests.
	Name string `json:"name,omitempty"`

	// Notes is free-form documentation carried with the file.
	Notes string `json:"notes,omitempty"`

	// Base is the scenario every point starts from.
	Base scenario.Scenario `json:"base"`

	// Axes are the swept parameters; an empty list yields the single base
	// point.
	Axes []Axis `json:"axes,omitempty"`
}

// Point is one expanded grid point.
type Point struct {
	// Index is the point's position in the row-major grid order.
	Index int

	// Label names the point for reports ("fleet.hosts=3 horizon=60").
	Label string

	// Scenario is the fully resolved per-point scenario (defaults applied,
	// seed derived).
	Scenario scenario.Scenario
}

// ParseSpec strictly decodes one sweep spec from JSON; unknown fields are
// rejected so typos fail loudly.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("%w: trailing data after spec object", ErrInvalidSpec)
	}
	return sp, nil
}

// ParseSpecBytes decodes one sweep spec from a JSON byte slice.
func ParseSpecBytes(data []byte) (Spec, error) { return ParseSpec(bytes.NewReader(data)) }

// Size reports the grid size (the product of axis lengths).
func (sp Spec) Size() int {
	n := 1
	for _, ax := range sp.Axes {
		n *= len(ax.Values)
	}
	return n
}

// Validate checks the spec shape without expanding it.
func (sp Spec) Validate() error {
	seen := map[string]bool{}
	for i, ax := range sp.Axes {
		if ax.Path == "" {
			return fmt.Errorf("%w: axis %d has no path", ErrInvalidSpec, i)
		}
		if len(ax.Values) == 0 {
			return fmt.Errorf("%w: axis %q has no values", ErrInvalidSpec, ax.Path)
		}
		if seen[ax.Path] {
			return fmt.Errorf("%w: axis %q appears twice", ErrInvalidSpec, ax.Path)
		}
		seen[ax.Path] = true
	}
	if sp.Size() > maxPoints {
		return fmt.Errorf("%w: %d points exceeds the %d-point cap", ErrInvalidSpec, sp.Size(), maxPoints)
	}
	return nil
}

// Expand materializes the grid: every combination of axis values applied to
// the base scenario, in row-major order with the first axis outermost.
// Each point gets seed PointSeed(rootSeed, index), where rootSeed is the
// base scenario's (default-resolved) seed — unless an axis sweeps "seed"
// itself, which then wins. Every point is validated; the first invalid
// point aborts the expansion.
//
// Axis paths are compiled against the scenario schema once per spec (see
// setters.go); each point then costs one deep clone of the base plus a
// typed field write per axis, with no per-point JSON round-trip.
func (sp Spec) Expand() ([]Point, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}

	axes := make([]compiledAxis, len(sp.Axes))
	for i, ax := range sp.Axes {
		ca, err := compileAxis(ax)
		if err != nil {
			return nil, fmt.Errorf("%w: axis %q: %v", ErrInvalidSpec, ax.Path, err)
		}
		axes[i] = ca
	}

	root := sp.Base.Seed
	if root == 0 {
		resolved := sp.Base
		resolved.ApplyDefaults()
		root = resolved.Seed
	}
	seedSwept := false
	for _, ax := range sp.Axes {
		if ax.Path == "seed" {
			seedSwept = true
		}
	}

	points := make([]Point, 0, sp.Size())
	coords := make([]int, len(sp.Axes))
	labels := make([]string, len(sp.Axes))
	for {
		s := sp.Base.Clone()
		for a := range axes {
			ca := &axes[a]
			labels[a] = ca.labels[coords[a]]
			if err := ca.apply(&s, coords[a]); err != nil {
				return nil, fmt.Errorf("%w: axis %q: %v", ErrInvalidSpec, ca.path, err)
			}
		}
		label := strings.Join(labels, " ")
		if !seedSwept {
			s.Seed = PointSeed(root, len(points))
		}
		s.ApplyDefaults()
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("point %d (%s): %w", len(points), label, err)
		}
		points = append(points, Point{
			Index:    len(points),
			Label:    label,
			Scenario: s,
		})

		// Row-major increment: last axis fastest.
		a := len(coords) - 1
		for ; a >= 0; a-- {
			coords[a]++
			if coords[a] < len(sp.Axes[a].Values) {
				break
			}
			coords[a] = 0
		}
		if a < 0 {
			break
		}
	}
	return points, nil
}

// PointSeed derives point index's seed from the sweep's root seed with a
// splitmix64 mix: well-spread, stable across releases, and never zero
// (zero means "default" in a scenario).
func PointSeed(root uint64, index int) uint64 {
	z := root + 0x9e3779b97f4a7c15*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// compactJSON renders an axis value for labels.
func compactJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprint(v)
	}
	return string(b)
}
