package sweep

import (
	"errors"
	"strings"
	"testing"
)

// testSpecJSON is a deliberately tiny scenario so engine tests stay fast.
const testSpecJSON = `{
  "name": "unit",
  "base": {
    "mode": "consolidated",
    "services": [
      {
        "profile": { "preset": "specweb-ecommerce" },
        "overhead": { "preset": "web" },
        "arrivals": { "kind": "poisson", "rate": 50 }
      }
    ],
    "fleet": { "hosts": 2 },
    "horizon": 8,
    "warmup": 2,
    "seed": 42,
    "replication": { "reps": 2 }
  },
  "axes": [
    { "path": "fleet.hosts", "values": [2, 3] },
    { "path": "horizon", "values": [8, 12] }
  ]
}`

func parseTestSpec(t *testing.T) Spec {
	t.Helper()
	sp, err := ParseSpecBytes([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestExpandGrid(t *testing.T) {
	sp := parseTestSpec(t)
	if got := sp.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expanded %d points, want 4", len(points))
	}
	// Row-major, first axis outermost: hosts varies slowest.
	wantHosts := []int{2, 2, 3, 3}
	wantHorizon := []float64{8, 12, 8, 12}
	wantLabels := []string{
		"fleet.hosts=2 horizon=8",
		"fleet.hosts=2 horizon=12",
		"fleet.hosts=3 horizon=8",
		"fleet.hosts=3 horizon=12",
	}
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d: Index = %d", i, p.Index)
		}
		if p.Label != wantLabels[i] {
			t.Errorf("point %d: Label = %q, want %q", i, p.Label, wantLabels[i])
		}
		if p.Scenario.Fleet.Hosts != wantHosts[i] {
			t.Errorf("point %d: hosts = %d, want %d", i, p.Scenario.Fleet.Hosts, wantHosts[i])
		}
		if p.Scenario.Horizon != wantHorizon[i] {
			t.Errorf("point %d: horizon = %g, want %g", i, p.Scenario.Horizon, wantHorizon[i])
		}
		if want := PointSeed(42, i); p.Scenario.Seed != want {
			t.Errorf("point %d: seed = %d, want PointSeed(42,%d) = %d", i, p.Scenario.Seed, i, want)
		}
	}
}

func TestExpandSeedAxisWins(t *testing.T) {
	sp := parseTestSpec(t)
	sp.Axes = []Axis{{Path: "seed", Values: []any{float64(5), float64(6)}}}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Scenario.Seed != 5 || points[1].Scenario.Seed != 6 {
		t.Fatalf("explicit seed axis not respected: got %d, %d",
			points[0].Scenario.Seed, points[1].Scenario.Seed)
	}
}

func TestExpandTypoPathRejected(t *testing.T) {
	sp := parseTestSpec(t)
	sp.Axes = append(sp.Axes, Axis{Path: "fleet.hostz", Values: []any{float64(1)}})
	if _, err := sp.Expand(); err == nil {
		t.Fatal("axis path fleet.hostz expanded cleanly; want a strict-parse rejection")
	}
}

func TestExpandArrayIndexPath(t *testing.T) {
	sp := parseTestSpec(t)
	sp.Axes = []Axis{{Path: "services.0.arrivals.rate", Values: []any{float64(100), float64(200)}}}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got := points[1].Scenario.Services[0].Arrivals.Rate; got != 200 {
		t.Fatalf("services.0.arrivals.rate = %g, want 200", got)
	}

	sp.Axes = []Axis{{Path: "services.5.clients", Values: []any{float64(1)}}}
	if _, err := sp.Expand(); err == nil {
		t.Fatal("out-of-range array index expanded cleanly")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{Axes: []Axis{{Path: "", Values: []any{1.0}}}},
		{Axes: []Axis{{Path: "horizon"}}},
		{Axes: []Axis{
			{Path: "horizon", Values: []any{1.0}},
			{Path: "horizon", Values: []any{2.0}},
		}},
	}
	for i, sp := range cases {
		if err := sp.Validate(); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("case %d: err = %v, want ErrInvalidSpec", i, err)
		}
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpecBytes([]byte(`{"bogus": 1}`)); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("unknown spec field accepted: %v", err)
	}
	trailing := testSpecJSON + ` {"more": true}`
	if _, err := ParseSpecBytes([]byte(trailing)); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("trailing data accepted: %v", err)
	}
	if !strings.Contains(testSpecJSON, `"axes"`) {
		t.Fatal("test spec lost its axes")
	}
}

func TestPointSeed(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := PointSeed(42, i)
		if s == 0 {
			t.Fatalf("PointSeed(42,%d) = 0", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("PointSeed collision between indexes %d and %d", prev, i)
		}
		seen[s] = i
	}
	if PointSeed(42, 7) != PointSeed(42, 7) {
		t.Fatal("PointSeed not deterministic")
	}
	if PointSeed(42, 7) == PointSeed(43, 7) {
		t.Fatal("PointSeed ignores the root seed")
	}
}
