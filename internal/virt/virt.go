// Package virt models the performance impact of virtualization — the
// paper's "impact factor" aᵢⱼ ∈ (0, 1]: the ratio of the QoS a service
// obtains from VMs on a host to the QoS it obtains from native Linux on the
// same host (Section IV-C.1).
//
// The package plays the role of the Xen layer in the authors' testbed. It
// provides:
//
//   - the three measured impact-factor curves the paper fits (Web disk I/O,
//     Web CPU, DB CPU&software) as parametric ImpactCurve values, with the
//     reconstructed coefficients of DESIGN.md §2;
//   - a HostOverhead model combining per-VM-count curves with the Domain-0
//     reservation and the vCPU pinning effect of Fig. 7; and
//   - fitting helpers that recover curve coefficients from measured
//     throughput points, closing the same regression loop as the paper.
package virt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// ImpactCurve maps a VM count v >= 1 to an impact factor a(v). The
// convention follows the paper: a is measured against native Linux, so
// a ≈ 1 means virtualization is free and a < 1 means degradation. Curves
// may mathematically exceed 1 (the paper's own DB fit does, because
// multi-VM DB hosting outperforms the OS-software-limited native setup);
// Clamped wraps a curve into the model's (0, 1] domain.
type ImpactCurve interface {
	// At reports the impact factor for v co-located VMs.
	At(v int) float64
	// String describes the curve.
	String() string
}

// LinearCurve is a(v) = Intercept + Slope·v — the form the paper fits for
// the Web service on both disk I/O (Fig. 5b) and CPU (Fig. 6b).
type LinearCurve struct {
	Intercept float64
	Slope     float64
}

func (c LinearCurve) At(v int) float64 { return c.Intercept + c.Slope*float64(v) }

func (c LinearCurve) String() string {
	return fmt.Sprintf("a(v) = %.4g%+.4g*v", c.Intercept, c.Slope)
}

// RationalCurve is a(v) = C·v²/(1+v²) — the saturating form the paper fits
// for the DB service's CPU&software factor (Fig. 8b). It captures the
// OS-software ceiling: one VM (like native Linux) delivers roughly half the
// throughput of two or more VMs, because the single OS image, not the CPU,
// is the bottleneck.
type RationalCurve struct {
	C float64
}

func (c RationalCurve) At(v int) float64 {
	fv := float64(v)
	return c.C * fv * fv / (1 + fv*fv)
}

func (c RationalCurve) String() string { return fmt.Sprintf("a(v) = %.4g*v^2/(1+v^2)", c.C) }

// ConstantCurve is a(v) = Value for every v — the ideal-virtualization
// reference (Value = 1) and a convenient test double.
type ConstantCurve struct {
	Value float64
}

func (c ConstantCurve) At(int) float64 { return c.Value }
func (c ConstantCurve) String() string { return fmt.Sprintf("a(v) = %.4g", c.Value) }

// Clamped restricts a curve's output to (lo, 1], where lo is a small
// positive floor protecting downstream Erlang math from non-positive
// factors. The paper's model demands a ∈ (0, 1] even though two of its own
// fitted curves stray outside that interval.
type Clamped struct {
	Curve ImpactCurve
	Floor float64 // zero means 0.01
}

func (c Clamped) At(v int) float64 {
	floor := c.Floor
	if floor == 0 {
		floor = 0.01
	}
	a := c.Curve.At(v)
	if a > 1 {
		return 1
	}
	if a < floor {
		return floor
	}
	return a
}

func (c Clamped) String() string { return "clamp(" + c.Curve.String() + ")" }

// The paper's fitted curves with the reconstructed coefficients of
// DESIGN.md §2.
var (
	// WebDiskIOCurve is Fig. 5(b): requests sweep a 5.7 GB SPECweb2005
	// fileset, disk I/O-bound. The slope is reconstructed as −0.102 so that
	// degradation passes 50 % beyond ~6 VMs (a(6) = 0.47, a(7) = 0.37),
	// matching Section IV-D's second observation, and a(2) ≈ 0.88 lands
	// near the stated case-study input a_wi ≈ 0.8.
	WebDiskIOCurve = LinearCurve{Intercept: 1.082, Slope: -0.102}

	// WebCPUCurve is Fig. 6(b): all requests hit one 8 KB file, CPU-bound.
	WebCPUCurve = LinearCurve{Intercept: 0.658, Slope: -0.0139}

	// DBCPUCurve is Fig. 8(b): TPC-W browsing over a 2.7 GB database,
	// CPU-bound with the OS-software ceiling on native/1-VM setups.
	DBCPUCurve = RationalCurve{C: 1.85}
)

// ErrInvalidVMCount reports a non-positive VM count.
var ErrInvalidVMCount = errors.New("virt: VM count must be >= 1")

// PinningPolicy selects how vCPUs map to physical cores (Fig. 7).
type PinningPolicy int

const (
	// PinnedVCPUs pins each DB vCPU to its own physical core, the
	// configuration the paper adopts after Fig. 7.
	PinnedVCPUs PinningPolicy = iota
	// XenScheduledVCPUs leaves placement to the Xen credit scheduler,
	// which Fig. 7 shows costs roughly a quarter of DB throughput —
	// "reflecting the latent room for vCPU scheduling in Xen".
	XenScheduledVCPUs
)

func (p PinningPolicy) String() string {
	if p == PinnedVCPUs {
		return "pinned"
	}
	return "xen-scheduled"
}

// UnpinnedPenalty is the multiplicative throughput factor Fig. 7 shows for
// leaving vCPU scheduling to Xen instead of pinning (reconstructed: the
// figure shows pinning recovering roughly a third over the unpinned
// configuration, i.e. unpinned ≈ 0.75× pinned).
const UnpinnedPenalty = 0.75

// Dom0Cores is the number of physical cores the case study reserves for
// Domain 0 ("the rest CPU cores and memory resources are allocated to
// Domain 0": 8 cores − 6 DB vCPUs − ... leaves 2).
const Dom0Cores = 2

// HostOverhead bundles the per-resource impact curves of one host
// configuration, with the VM count and pinning policy applied.
type HostOverhead struct {
	// Curves maps a resource name (matching core.Resource values) to its
	// impact curve.
	Curves map[string]ImpactCurve

	// Pinning is the vCPU placement policy; it scales CPU-family resources
	// by UnpinnedPenalty when set to XenScheduledVCPUs.
	Pinning PinningPolicy

	// CPUResources names the resources affected by the pinning policy;
	// empty means {"cpu"}.
	CPUResources []string
}

// Factor reports the impact factor for the given resource with v VMs
// co-located on the host, clamped to (0, 1]. Resources without a curve
// default to 1 (no overhead). It returns an error for v < 1.
func (h HostOverhead) Factor(resource string, v int) (float64, error) {
	if v < 1 {
		return 0, fmt.Errorf("%w: %d", ErrInvalidVMCount, v)
	}
	a := 1.0
	if c, ok := h.Curves[resource]; ok {
		a = Clamped{Curve: c}.At(v)
	}
	if h.Pinning == XenScheduledVCPUs && h.isCPU(resource) {
		a *= UnpinnedPenalty
	}
	if a > 1 {
		a = 1
	}
	if a <= 0 {
		a = 0.01
	}
	return a, nil
}

// RawFactor is Factor without the (0, 1] clamp: the measured ratio against
// native Linux, which for the DB service exceeds 1 at v >= 2. The cluster
// simulator uses RawFactor (physics), while model inputs use Factor
// (the paper's domain constraint).
func (h HostOverhead) RawFactor(resource string, v int) (float64, error) {
	if v < 1 {
		return 0, fmt.Errorf("%w: %d", ErrInvalidVMCount, v)
	}
	a := 1.0
	if c, ok := h.Curves[resource]; ok {
		a = c.At(v)
	}
	if h.Pinning == XenScheduledVCPUs && h.isCPU(resource) {
		a *= UnpinnedPenalty
	}
	if a <= 0 {
		a = 0.01
	}
	return a, nil
}

func (h HostOverhead) isCPU(resource string) bool {
	cpus := h.CPUResources
	if len(cpus) == 0 {
		cpus = []string{"cpu"}
	}
	for _, r := range cpus {
		if r == resource {
			return true
		}
	}
	return false
}

// WebHostOverhead returns the case-study Web-service host configuration:
// disk I/O follows Fig. 5(b), CPU follows Fig. 6(b).
func WebHostOverhead() HostOverhead {
	return HostOverhead{Curves: map[string]ImpactCurve{
		"diskio": WebDiskIOCurve,
		"cpu":    WebCPUCurve,
	}}
}

// DBHostOverhead returns the case-study DB-service host configuration:
// CPU&software follows Fig. 8(b); disk demand is negligible.
func DBHostOverhead() HostOverhead {
	return HostOverhead{Curves: map[string]ImpactCurve{
		"cpu": DBCPUCurve,
	}}
}

// FitLinear recovers a LinearCurve from measured (vmCount, impactFactor)
// points — the regression step of Fig. 5(b)/6(b).
func FitLinear(vms []int, factors []float64) (LinearCurve, float64, error) {
	if len(vms) != len(factors) || len(vms) < 2 {
		return LinearCurve{}, 0, stats.ErrDegenerate
	}
	xs := make([]float64, len(vms))
	for i, v := range vms {
		xs[i] = float64(v)
	}
	fit, err := stats.LinearRegression(xs, factors)
	if err != nil {
		return LinearCurve{}, 0, err
	}
	return LinearCurve{Intercept: fit.Intercept, Slope: fit.Slope}, fit.R2, nil
}

// FitRational recovers a RationalCurve from measured points — the
// regression step of Fig. 8(b).
func FitRational(vms []int, factors []float64) (RationalCurve, float64, error) {
	if len(vms) != len(factors) || len(vms) == 0 {
		return RationalCurve{}, 0, stats.ErrDegenerate
	}
	xs := make([]float64, len(vms))
	for i, v := range vms {
		xs[i] = float64(v)
	}
	fit, err := stats.FitRationalSaturating(xs, factors)
	if err != nil {
		return RationalCurve{}, 0, err
	}
	return RationalCurve{C: fit.C}, fit.R2, nil
}

// StableMeanImpact computes an impact factor the way the paper does for
// Fig. 5(b)/6(b): the ratio of the stable mean throughput of the
// virtualized configuration to that of the native configuration, where the
// stable mean is taken over the plateau region (observations within the
// top (1−plateauBand) fraction of the peak). plateauBand 0 means 0.2.
func StableMeanImpact(virtualized, native []float64, plateauBand float64) (float64, error) {
	vn, err := stableMean(virtualized, plateauBand)
	if err != nil {
		return 0, fmt.Errorf("virt: virtualized series: %w", err)
	}
	nm, err := stableMean(native, plateauBand)
	if err != nil {
		return 0, fmt.Errorf("virt: native series: %w", err)
	}
	if nm == 0 {
		return 0, errors.New("virt: native stable mean is zero")
	}
	return vn / nm, nil
}

func stableMean(series []float64, band float64) (float64, error) {
	if len(series) == 0 {
		return 0, errors.New("empty throughput series")
	}
	if band == 0 {
		band = 0.2
	}
	peak := stats.Max(series)
	if peak <= 0 {
		return 0, errors.New("non-positive peak throughput")
	}
	var acc stats.Accumulator
	for _, x := range series {
		if x >= peak*(1-band) {
			acc.Add(x)
		}
	}
	return acc.Mean(), nil
}

// EffectiveServingRate applies an impact factor to a native serving rate:
// μ·a, guarding against non-finite inputs.
func EffectiveServingRate(nativeRate, factor float64) float64 {
	if math.IsInf(nativeRate, 1) {
		return nativeRate
	}
	return nativeRate * factor
}
