package virt

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPaperCurveValues(t *testing.T) {
	// Fig. 5(b): a_wi(1) ≈ 0.98 (single VM near-native), a_wi(2) ≈ 0.88,
	// and degradation passes 50 % beyond 6 VMs (Section IV-D).
	if got := WebDiskIOCurve.At(1); math.Abs(got-0.980) > 1e-12 {
		t.Fatalf("WebDiskIO(1) = %g", got)
	}
	if got := WebDiskIOCurve.At(2); math.Abs(got-0.878) > 1e-12 {
		t.Fatalf("WebDiskIO(2) = %g", got)
	}
	if got := WebDiskIOCurve.At(7); got >= 0.5 {
		t.Fatalf("WebDiskIO(7) = %g, want < 0.5", got)
	}
	// Fig. 6(b): a_wc(2) ≈ 0.630.
	if got := WebCPUCurve.At(2); math.Abs(got-0.6302) > 1e-9 {
		t.Fatalf("WebCPU(2) = %g", got)
	}
	// Fig. 8(b): a_dc(1) < 1 (OS ceiling), a_dc(2) > 1 (multi-VM beats native).
	if got := DBCPUCurve.At(1); math.Abs(got-0.925) > 1e-12 {
		t.Fatalf("DBCPU(1) = %g", got)
	}
	if got := DBCPUCurve.At(2); got <= 1 {
		t.Fatalf("DBCPU(2) = %g, want > 1", got)
	}
}

func TestCurveStrings(t *testing.T) {
	for _, c := range []ImpactCurve{WebDiskIOCurve, WebCPUCurve, DBCPUCurve,
		ConstantCurve{1}, Clamped{Curve: DBCPUCurve}} {
		if c.String() == "" {
			t.Fatalf("%T renders empty", c)
		}
	}
}

func TestClamped(t *testing.T) {
	c := Clamped{Curve: DBCPUCurve}
	if got := c.At(2); got != 1 {
		t.Fatalf("clamp above 1 failed: %g", got)
	}
	low := Clamped{Curve: LinearCurve{Intercept: 0.1, Slope: -0.05}}
	if got := low.At(10); got != 0.01 {
		t.Fatalf("default floor failed: %g", got)
	}
	floored := Clamped{Curve: LinearCurve{Intercept: 0.1, Slope: -0.05}, Floor: 0.2}
	if got := floored.At(10); got != 0.2 {
		t.Fatalf("explicit floor failed: %g", got)
	}
	// In-range values pass through.
	mid := Clamped{Curve: ConstantCurve{0.7}}
	if got := mid.At(3); got != 0.7 {
		t.Fatalf("pass-through failed: %g", got)
	}
}

func TestClampedAlwaysInDomainProperty(t *testing.T) {
	f := func(i, s int16, v uint8) bool {
		c := Clamped{Curve: LinearCurve{
			Intercept: float64(i) / 100,
			Slope:     float64(s) / 1000,
		}}
		a := c.At(int(v)%20 + 1)
		return a > 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHostOverheadFactor(t *testing.T) {
	web := WebHostOverhead()
	a, err := web.Factor("diskio", 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.878) > 1e-12 {
		t.Fatalf("web diskio factor at v=2 = %g, want 0.878", a)
	}
	a, err = web.Factor("diskio", 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-(1.082-0.102*9)) > 1e-12 {
		t.Fatalf("web diskio factor at v=9 = %g", a)
	}
	// Unknown resources carry no overhead.
	a, err = web.Factor("memory", 3)
	if err != nil || a != 1 {
		t.Fatalf("memory factor = %g, err=%v", a, err)
	}
	// Invalid VM count.
	if _, err := web.Factor("cpu", 0); !errors.Is(err, ErrInvalidVMCount) {
		t.Fatal("v=0 accepted")
	}
}

func TestRawFactorVsFactor(t *testing.T) {
	db := DBHostOverhead()
	raw, err := db.RawFactor("cpu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if raw <= 1 {
		t.Fatalf("raw DB factor at v=4 = %g, want > 1", raw)
	}
	clamped, err := db.Factor("cpu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if clamped != 1 {
		t.Fatalf("clamped DB factor = %g", clamped)
	}
	if _, err := db.RawFactor("cpu", -1); !errors.Is(err, ErrInvalidVMCount) {
		t.Fatal("negative v accepted")
	}
}

func TestPinningPenalty(t *testing.T) {
	pinned := DBHostOverhead()
	unpinned := DBHostOverhead()
	unpinned.Pinning = XenScheduledVCPUs

	ap, err := pinned.RawFactor("cpu", 6)
	if err != nil {
		t.Fatal(err)
	}
	au, err := unpinned.RawFactor("cpu", 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(au-ap*UnpinnedPenalty) > 1e-12 {
		t.Fatalf("unpinned %g != pinned %g * %g", au, ap, UnpinnedPenalty)
	}
	// Pinning policy must not touch non-CPU resources.
	web := WebHostOverhead()
	web.Pinning = XenScheduledVCPUs
	aDisk, _ := web.RawFactor("diskio", 3)
	aDiskPinned, _ := WebHostOverhead().RawFactor("diskio", 3)
	if aDisk != aDiskPinned {
		t.Fatal("pinning affected disk I/O")
	}
	if PinnedVCPUs.String() != "pinned" || XenScheduledVCPUs.String() != "xen-scheduled" {
		t.Fatal("policy names wrong")
	}
}

func TestCustomCPUResources(t *testing.T) {
	h := HostOverhead{
		Curves:       map[string]ImpactCurve{"vcpu": ConstantCurve{0.9}},
		Pinning:      XenScheduledVCPUs,
		CPUResources: []string{"vcpu"},
	}
	a, err := h.Factor("vcpu", 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.9*UnpinnedPenalty) > 1e-12 {
		t.Fatalf("custom cpu resource factor = %g", a)
	}
}

func TestFitLinearRecoversPaperCurve(t *testing.T) {
	vms := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	factors := make([]float64, len(vms))
	for i, v := range vms {
		factors[i] = WebDiskIOCurve.At(v)
	}
	fit, r2, err := FitLinear(vms, factors)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-1.082) > 1e-9 || math.Abs(fit.Slope+0.102) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if r2 < 1-1e-9 {
		t.Fatalf("R2 = %g", r2)
	}
}

func TestFitRationalRecoversPaperCurve(t *testing.T) {
	vms := []int{1, 2, 3, 4, 5, 6}
	factors := make([]float64, len(vms))
	for i, v := range vms {
		factors[i] = DBCPUCurve.At(v)
	}
	fit, r2, err := FitRational(vms, factors)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.C-1.85) > 1e-9 {
		t.Fatalf("C = %g", fit.C)
	}
	if r2 < 1-1e-9 {
		t.Fatalf("R2 = %g", r2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := FitLinear([]int{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, err := FitLinear([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := FitRational(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestStableMeanImpact(t *testing.T) {
	// Native plateau at 100; virtualized plateau at 80 → impact 0.8.
	native := []float64{10, 40, 70, 98, 100, 99, 97, 96}
	virt := []float64{10, 35, 60, 78, 80, 79, 78, 77}
	a, err := StableMeanImpact(virt, native, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Plateau (top 10 %): native {98,100,99,97,96} → 98; virtualized
	// {78,80,79,78,77} → 78.4; ratio 0.8.
	if math.Abs(a-0.8) > 1e-9 {
		t.Fatalf("impact = %g, want 0.8", a)
	}
}

func TestStableMeanImpactErrors(t *testing.T) {
	good := []float64{1, 2, 3}
	if _, err := StableMeanImpact(nil, good, 0); err == nil {
		t.Fatal("empty virtualized accepted")
	}
	if _, err := StableMeanImpact(good, nil, 0); err == nil {
		t.Fatal("empty native accepted")
	}
	if _, err := StableMeanImpact(good, []float64{0, 0}, 0); err == nil {
		t.Fatal("zero native accepted")
	}
	if _, err := StableMeanImpact([]float64{-1, -2}, good, 0); err == nil {
		t.Fatal("negative virtualized accepted")
	}
}

func TestEffectiveServingRate(t *testing.T) {
	if got := EffectiveServingRate(1000, 0.8); got != 800 {
		t.Fatalf("rate = %g", got)
	}
	if got := EffectiveServingRate(math.Inf(1), 0.5); !math.IsInf(got, 1) {
		t.Fatal("infinite rate should stay infinite")
	}
}

func TestWebDiskDegradationPassesHalfAfterSixVMs(t *testing.T) {
	// Section IV-D: "the overhead of Xen on disk I/O is huge, especially
	// when the number of VMs is more than six (the degradation of
	// throughput is more than 50%)". Our reconstruction keeps the curve
	// monotone decreasing; verify monotonicity and that degradation grows
	// with VM count.
	prev := math.Inf(1)
	for v := 1; v <= 9; v++ {
		a := WebDiskIOCurve.At(v)
		if a >= prev {
			t.Fatalf("curve not decreasing at v=%d", v)
		}
		prev = a
	}
}
