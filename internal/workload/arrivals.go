// Package workload generates the request streams and service-demand
// profiles the paper's evaluation uses: Poisson arrival processes (the
// model's assumption 2), non-Poisson alternatives for robustness testing
// (the Paxson & Floyd critique the paper cites as [11]), and synthetic
// stand-ins for the SPECweb2005 e-commerce and TPC-W e-book benchmarks
// (Section IV-B).
package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ArrivalProcess produces successive inter-arrival times. Implementations
// may carry state (e.g. the MMPP phase), so each concurrent consumer must
// own its instance.
type ArrivalProcess interface {
	// Next draws the time until the next arrival.
	Next(s *stats.Stream) float64
	// Rate reports the long-run mean arrival rate.
	Rate() float64
	// String describes the process.
	String() string
}

// Cloner is implemented by stateful arrival processes that can produce a
// fresh, independent copy of themselves with the mutable state reset to the
// initial conditions. Replication engines clone the configured process for
// every replication so concurrent runs never share (or leak) phase state.
type Cloner interface {
	// CloneProcess returns an independent copy with pristine state.
	CloneProcess() ArrivalProcess
}

// Clone returns an independent instance of p safe to hand to a concurrent
// consumer: stateful processes (those implementing Cloner) are copied with
// reset state, stateless ones are returned as-is.
func Clone(p ArrivalProcess) ArrivalProcess {
	if c, ok := p.(Cloner); ok {
		return c.CloneProcess()
	}
	return p
}

// Poisson is the homogeneous Poisson process with the given rate —
// exponential inter-arrival times, the model's assumption for
// "user-initiated TCP sessions arriv[ing] at a WAN" [10][11].
type Poisson struct {
	Lambda float64
}

// NewPoisson validates and returns a Poisson process.
func NewPoisson(rate float64) *Poisson {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("workload: Poisson rate must be positive and finite, got %v", rate))
	}
	return &Poisson{Lambda: rate}
}

func (p *Poisson) Next(s *stats.Stream) float64 { return s.ExpFloat64() / p.Lambda }
func (p *Poisson) Rate() float64                { return p.Lambda }
func (p *Poisson) String() string               { return fmt.Sprintf("Poisson(%g)", p.Lambda) }

// Renewal is a renewal process with arbitrary inter-arrival distribution —
// deterministic (perfectly paced load generators like httperf's fixed-rate
// mode), heavy-tailed Pareto, or anything else.
type Renewal struct {
	Inter stats.Distribution
}

func (r *Renewal) Next(s *stats.Stream) float64 { return r.Inter.Sample(s) }

func (r *Renewal) Rate() float64 {
	m := r.Inter.Mean()
	if m <= 0 || math.IsInf(m, 1) {
		return 0
	}
	return 1 / m
}

func (r *Renewal) String() string { return fmt.Sprintf("Renewal(%s)", r.Inter) }

// MMPP2 is a two-phase Markov-modulated Poisson process: arrivals are
// Poisson with rate Rate1 or Rate2 depending on a hidden phase that flips
// after exponential holding times. It produces the bursty, correlated
// traffic the Poisson assumption misses, letting the test suite quantify
// the model's sensitivity to assumption 2.
type MMPP2 struct {
	Rate1, Rate2 float64 // arrival rates in phases 1 and 2
	Hold1, Hold2 float64 // mean phase holding times

	phase2    bool
	remaining float64 // time left in the current phase
}

// NewMMPP2 validates parameters and returns a process starting in phase 1.
func NewMMPP2(rate1, rate2, hold1, hold2 float64) *MMPP2 {
	if rate1 < 0 || rate2 < 0 || hold1 <= 0 || hold2 <= 0 {
		panic("workload: invalid MMPP2 parameters")
	}
	if rate1 == 0 && rate2 == 0 {
		panic("workload: MMPP2 needs a positive rate in some phase")
	}
	return &MMPP2{Rate1: rate1, Rate2: rate2, Hold1: hold1, Hold2: hold2}
}

// Rate reports the stationary mean rate: phase probabilities are
// proportional to mean holding times.
func (m *MMPP2) Rate() float64 {
	return (m.Rate1*m.Hold1 + m.Rate2*m.Hold2) / (m.Hold1 + m.Hold2)
}

func (m *MMPP2) String() string {
	return fmt.Sprintf("MMPP2(r1=%g,r2=%g,h1=%g,h2=%g)", m.Rate1, m.Rate2, m.Hold1, m.Hold2)
}

// Next advances the phase process until an arrival occurs and returns the
// elapsed time.
func (m *MMPP2) Next(s *stats.Stream) float64 {
	elapsed := 0.0
	for {
		rate, hold := m.Rate1, m.Hold1
		if m.phase2 {
			rate, hold = m.Rate2, m.Hold2
		}
		if m.remaining <= 0 {
			m.remaining = s.ExpFloat64() * hold
		}
		if rate > 0 {
			gap := s.ExpFloat64() / rate
			if gap <= m.remaining {
				m.remaining -= gap
				return elapsed + gap
			}
		}
		// Phase expires before the next arrival.
		elapsed += m.remaining
		m.remaining = 0
		m.phase2 = !m.phase2
	}
}

// CloneProcess returns a copy starting afresh in phase 1.
func (m *MMPP2) CloneProcess() ArrivalProcess {
	return &MMPP2{Rate1: m.Rate1, Rate2: m.Rate2, Hold1: m.Hold1, Hold2: m.Hold2}
}

// OnOff is the special MMPP2 case with a silent phase — bursts of Poisson
// traffic separated by idle periods.
func OnOff(burstRate, meanBurst, meanIdle float64) *MMPP2 {
	return NewMMPP2(burstRate, 0, meanBurst, meanIdle)
}

// Superpose merges multiple arrival processes into one stream, which is
// what a consolidated pool sees: the superposition of every service's
// arrivals. (For Poisson inputs the result is exactly Poisson with the
// summed rate; for others it is only asymptotically Poisson — another
// robustness axis.)
type Superpose struct {
	procs   []ArrivalProcess
	pending []float64 // time until each component's next arrival
}

// NewSuperpose builds a superposition. It panics on an empty input.
func NewSuperpose(procs ...ArrivalProcess) *Superpose {
	if len(procs) == 0 {
		panic("workload: Superpose needs at least one process")
	}
	return &Superpose{procs: procs, pending: make([]float64, len(procs))}
}

func (sp *Superpose) Rate() float64 {
	sum := 0.0
	for _, p := range sp.procs {
		sum += p.Rate()
	}
	return sum
}

func (sp *Superpose) String() string { return fmt.Sprintf("Superpose(%d)", len(sp.procs)) }

// Next returns the time to the earliest pending arrival across components.
func (sp *Superpose) Next(s *stats.Stream) float64 {
	for i, p := range sp.procs {
		if sp.pending[i] <= 0 {
			sp.pending[i] = p.Next(s)
		}
		_ = p
	}
	// Find the minimum.
	minIdx := 0
	for i := 1; i < len(sp.pending); i++ {
		if sp.pending[i] < sp.pending[minIdx] {
			minIdx = i
		}
	}
	gap := sp.pending[minIdx]
	for i := range sp.pending {
		sp.pending[i] -= gap
	}
	return gap
}

// CloneProcess deep-copies the superposition: every stateful component is
// cloned and the pending arrival times are cleared.
func (sp *Superpose) CloneProcess() ArrivalProcess {
	procs := make([]ArrivalProcess, len(sp.procs))
	for i, p := range sp.procs {
		procs[i] = Clone(p)
	}
	return NewSuperpose(procs...)
}

// SourceOf reports which component produced the arrival that Next just
// returned — the component whose pending time reached zero. If several hit
// zero simultaneously the lowest index wins. It must be called immediately
// after Next.
func (sp *Superpose) SourceOf() int {
	for i, p := range sp.pending {
		if p <= 0 {
			return i
		}
	}
	return 0
}
