package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// NHPP is a non-homogeneous Poisson process with piecewise-constant rate —
// the trace-driven arrival source for diurnal workloads (Fig. 2's daily
// cycles feeding the simulators). Rates[i] applies for the i-th window of
// BinSec seconds; after the last bin the pattern repeats if Cycle is set,
// otherwise the last rate holds forever.
//
// Sampling is exact (piecewise-exponential, no thinning): within a
// constant-rate window the next gap is exponential; if it overshoots the
// window boundary the residual exponential restarts in the next window
// (memorylessness).
type NHPP struct {
	Rates  []float64
	BinSec float64
	Cycle  bool

	clock float64 // internal process time
}

// NewNHPP validates and returns the process.
func NewNHPP(rates []float64, binSec float64, cycle bool) *NHPP {
	if len(rates) == 0 {
		panic("workload: NHPP needs at least one rate")
	}
	if binSec <= 0 || math.IsNaN(binSec) {
		panic(fmt.Sprintf("workload: NHPP bin width %v", binSec))
	}
	positive := false
	for _, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			panic(fmt.Sprintf("workload: NHPP rate %v", r))
		}
		if r > 0 {
			positive = true
		}
	}
	if !positive {
		panic("workload: NHPP needs a positive rate somewhere")
	}
	return &NHPP{Rates: append([]float64(nil), rates...), BinSec: binSec, Cycle: cycle}
}

// FromTrace builds an NHPP from a workload-intensity series (values are
// rates in requests/second).
func FromTrace(values []float64, binSec float64, cycle bool) *NHPP {
	return NewNHPP(values, binSec, cycle)
}

// CloneProcess returns a copy positioned at the start of the rate schedule.
func (p *NHPP) CloneProcess() ArrivalProcess {
	return NewNHPP(p.Rates, p.BinSec, p.Cycle)
}

// rateAt reports the rate in force at process time t.
func (p *NHPP) rateAt(t float64) (rate float64, windowEnd float64) {
	bin := int(t / p.BinSec)
	// Guard the bin boundary against float truncation: when t sits exactly
	// on a window edge but t/BinSec rounds just below the integer (BinSec
	// values like 1/80 are not exactly representable), the naive bin would
	// report windowEnd == t and Next's overshoot step could stall forever.
	// Always hand back a window that strictly contains t.
	for float64(bin+1)*p.BinSec <= t {
		bin++
	}
	n := len(p.Rates)
	idx := bin
	if idx >= n {
		if p.Cycle {
			idx = bin % n
		} else {
			idx = n - 1
			return p.Rates[idx], math.Inf(1)
		}
	}
	return p.Rates[idx], float64(bin+1) * p.BinSec
}

// Next advances the process to the next arrival and returns the elapsed
// time.
func (p *NHPP) Next(s *stats.Stream) float64 {
	start := p.clock
	for {
		rate, windowEnd := p.rateAt(p.clock)
		if rate <= 0 {
			// Idle window: jump to its end.
			if math.IsInf(windowEnd, 1) {
				// Terminal zero rate: no more arrivals, ever. Return a
				// huge gap so drivers run past any finite horizon.
				p.clock += 1e18
				return p.clock - start
			}
			p.clock = windowEnd
			continue
		}
		gap := s.ExpFloat64() / rate
		if p.clock+gap <= windowEnd {
			p.clock += gap
			return p.clock - start
		}
		// Overshoot: discard and restart at the boundary (memoryless).
		p.clock = windowEnd
	}
}

// Rate reports the long-run mean rate: the cycle average when cycling, the
// terminal rate otherwise.
func (p *NHPP) Rate() float64 {
	if p.Cycle {
		return stats.Mean(p.Rates)
	}
	return p.Rates[len(p.Rates)-1]
}

// PeakRate reports the largest windowed rate.
func (p *NHPP) PeakRate() float64 { return stats.Max(p.Rates) }

// String describes the process.
func (p *NHPP) String() string {
	return fmt.Sprintf("NHPP(bins=%d,bin=%gs,cycle=%t)", len(p.Rates), p.BinSec, p.Cycle)
}
