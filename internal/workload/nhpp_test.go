package workload

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestNHPPConstantRateIsPoisson(t *testing.T) {
	p := NewNHPP([]float64{5}, 100, true)
	got := measureRate(p, 3000, 31)
	if stats.RelativeError(got, 5) > 0.03 {
		t.Fatalf("constant NHPP rate %.3f, want 5", got)
	}
	if p.Rate() != 5 || p.PeakRate() != 5 {
		t.Fatal("rate metadata wrong")
	}
}

func TestNHPPPerBinRates(t *testing.T) {
	// Two alternating windows: rate 10 for 50 s, rate 2 for 50 s.
	p := NewNHPP([]float64{10, 2}, 50, true)
	s := stats.NewStream(33, "nhpp/bins")
	counts := [2]int{}
	clock := 0.0
	horizon := 20000.0
	for {
		clock += p.Next(s)
		if clock > horizon {
			break
		}
		if int(clock/50)%2 == 0 {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	// Each phase covers half the horizon.
	r0 := float64(counts[0]) / (horizon / 2)
	r1 := float64(counts[1]) / (horizon / 2)
	if stats.RelativeError(r0, 10) > 0.05 {
		t.Fatalf("hot phase rate %.3f, want 10", r0)
	}
	if stats.RelativeError(r1, 2) > 0.1 {
		t.Fatalf("cold phase rate %.3f, want 2", r1)
	}
	if stats.RelativeError(p.Rate(), 6) > 1e-12 {
		t.Fatalf("mean rate %g", p.Rate())
	}
	if p.PeakRate() != 10 {
		t.Fatalf("peak %g", p.PeakRate())
	}
}

func TestNHPPZeroRateWindows(t *testing.T) {
	// Rate 4 then silence, cycling: arrivals only in even windows.
	p := NewNHPP([]float64{4, 0}, 10, true)
	s := stats.NewStream(35, "nhpp/zero")
	clock := 0.0
	for i := 0; i < 2000; i++ {
		clock += p.Next(s)
		window := int(clock/10) % 2
		if window != 0 {
			t.Fatalf("arrival at %.3f inside a silent window", clock)
		}
	}
}

func TestNHPPNonCyclingTailRate(t *testing.T) {
	// After the trace ends, the last rate holds.
	p := NewNHPP([]float64{100, 1}, 1, false)
	if p.Rate() != 1 {
		t.Fatalf("terminal rate %g", p.Rate())
	}
	s := stats.NewStream(37, "nhpp/tail")
	// Skip past the first two windows.
	clock := 0.0
	for clock < 2 {
		clock += p.Next(s)
	}
	n := 0
	start := clock
	for clock-start < 500 {
		clock += p.Next(s)
		n++
	}
	if stats.RelativeError(float64(n)/500, 1) > 0.15 {
		t.Fatalf("tail rate %.3f, want 1", float64(n)/500)
	}
}

func TestNHPPTerminalZeroRate(t *testing.T) {
	// Non-cycling trace ending at zero: Next returns an enormous gap
	// rather than hanging.
	p := NewNHPP([]float64{5, 0}, 1, false)
	s := stats.NewStream(39, "nhpp/dead")
	clock := 0.0
	for i := 0; i < 100 && clock < 1e9; i++ {
		clock += p.Next(s)
	}
	if clock < 1e9 {
		t.Fatal("terminal zero rate kept producing arrivals")
	}
}

// TestNHPPBoundaryClockMakesProgress pins the float-truncation stall:
// with a bin width that is not exactly representable (1/80 s here), a
// clock sitting exactly on a window edge used to make rateAt report
// windowEnd == clock, so Next's overshoot step never advanced — an
// infinite loop. The loadgen harness hit this within milliseconds of
// compressing a diurnal profile onto a sub-second run.
func TestNHPPBoundaryClockMakesProgress(t *testing.T) {
	const binSec = 0.0125
	// Find a boundary where the quotient rounds down across the integer.
	k := 0
	for i := 1; i < 1_000_000; i++ {
		edge := float64(i) * binSec
		if int(edge/binSec) < i {
			k = i
			break
		}
	}
	if k == 0 {
		t.Skip("no truncating boundary below 1e6 for this bin width")
	}
	p := NewNHPP([]float64{1e-9, 1e-9}, binSec, true)
	p.clock = float64(k) * binSec
	s := stats.NewStream(41, "nhpp/boundary")
	// The near-zero rate forces the overshoot path every window; without
	// the rateAt guard this loops forever instead of sweeping forward.
	if gap := p.Next(s); gap <= 0 {
		t.Fatalf("gap %g from boundary clock", gap)
	}
}

// TestNHPPCompressedBinsTerminate drives the loadgen configuration that
// exposed the stall end to end: a 24-bin profile squeezed into 0.3 s.
func TestNHPPCompressedBinsTerminate(t *testing.T) {
	rates := make([]float64, 24)
	for i := range rates {
		rates[i] = 30 + float64(i)
	}
	p := NewNHPP(rates, 0.3/24, true)
	s := stats.NewStream(43, "nhpp/compressed")
	clock := 0.0
	for i := 0; i < 50_000; i++ {
		gap := p.Next(s)
		if gap < 0 || math.IsNaN(gap) {
			t.Fatalf("gap %g at arrival %d", gap, i)
		}
		clock += gap
	}
	if clock <= 0 {
		t.Fatal("clock never advanced")
	}
}

func TestNHPPPanics(t *testing.T) {
	cases := []func(){
		func() { NewNHPP(nil, 1, false) },
		func() { NewNHPP([]float64{1}, 0, false) },
		func() { NewNHPP([]float64{-1}, 1, false) },
		func() { NewNHPP([]float64{math.NaN()}, 1, false) },
		func() { NewNHPP([]float64{0, 0}, 1, false) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFromTrace(t *testing.T) {
	p := FromTrace([]float64{3, 6, 9}, 60, true)
	if stats.RelativeError(p.Rate(), 6) > 1e-12 {
		t.Fatalf("trace rate %g", p.Rate())
	}
	if p.String() == "" {
		t.Fatal("empty description")
	}
}
