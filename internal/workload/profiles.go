package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Resource names match core.Resource values; workload keeps them as plain
// strings to avoid an import cycle with higher layers.
const (
	CPU    = "cpu"
	DiskIO = "diskio"
)

// ServiceProfile describes one benchmark service's demand on a single
// dedicated physical server: for each resource, the distribution of
// service time (seconds of that resource) one request consumes, plus the
// OS-software throughput ceiling the paper discovers for the DB service
// (Fig. 8: "OS software limits the performance improvement for DB
// service").
type ServiceProfile struct {
	// Name identifies the profile ("specweb-ecommerce", "tpcw-ebook", ...).
	Name string

	// Demands maps resources to per-request service-time distributions on
	// native Linux. Resources not present carry zero demand.
	Demands map[string]stats.Distribution

	// OSCeiling caps the request completion rate of a single OS image
	// (native Linux or one VM) in requests per second, regardless of spare
	// hardware capacity. Zero means no ceiling. Multiple VMs each get their
	// own ceiling, which is how consolidation beats native hosting for the
	// DB service.
	OSCeiling float64

	// MetricName is the throughput unit the paper reports for this service
	// ("replies/s" for the Web service, "WIPS" for the DB service).
	MetricName string
}

// ServingRate reports μ for a resource: the reciprocal of the mean demand,
// or +Inf for resources the profile does not touch. This is the model
// input μᵢⱼ of Eq. (3).
func (p ServiceProfile) ServingRate(resource string) float64 {
	d, ok := p.Demands[resource]
	if !ok {
		return math.Inf(1)
	}
	m := d.Mean()
	if m <= 0 {
		return math.Inf(1)
	}
	return 1 / m
}

// BottleneckResource reports the resource with the largest mean demand and
// that resource's serving rate.
func (p ServiceProfile) BottleneckResource() (string, float64) {
	best := ""
	bestRate := math.Inf(1)
	for r := range p.Demands {
		rate := p.ServingRate(r)
		if rate < bestRate || (rate == bestRate && r < best) {
			best, bestRate = r, rate
		}
	}
	return best, bestRate
}

// Validate checks the profile.
func (p ServiceProfile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if len(p.Demands) == 0 {
		return fmt.Errorf("workload: profile %q has no demands", p.Name)
	}
	for r, d := range p.Demands {
		if d == nil {
			return fmt.Errorf("workload: profile %q resource %q has nil demand", p.Name, r)
		}
		m := d.Mean()
		if m < 0 || math.IsNaN(m) {
			return fmt.Errorf("workload: profile %q resource %q mean demand %g", p.Name, r, m)
		}
	}
	if p.OSCeiling < 0 || math.IsNaN(p.OSCeiling) {
		return fmt.Errorf("workload: profile %q OS ceiling %g", p.Name, p.OSCeiling)
	}
	return nil
}

// The reconstructed case-study serving rates (DESIGN.md §2).
const (
	// WebDiskRate is μ_wi: disk I/O completions per second for the
	// e-commerce fileset sweep.
	WebDiskRate = 1420.0
	// WebCPURate is μ_wc: CPU completions per second for Web requests.
	WebCPURate = 3360.0
	// DBCPURate is μ_dc: Web interactions per second one native OS image
	// sustains (the OS-software ceiling; the hardware itself can go
	// higher — see DBHardwareCPURate).
	DBCPURate = 100.0
	// DBHardwareCPURate is the CPU-bound WIPS limit of the physical server
	// once the OS ceiling is lifted by running several VMs: the asymptote
	// 1.85·μ_dc of the paper's Fig. 8(b) rational fit.
	DBHardwareCPURate = 185.0
)

// SPECwebEcommerce models the paper's Web service under the 5.7 GB
// SPECweb2005 e-commerce fileset (Fig. 5): disk-I/O-bound with a secondary
// CPU demand. Service times are exponential with the reconstructed means.
func SPECwebEcommerce() ServiceProfile {
	return ServiceProfile{
		Name: "specweb-ecommerce",
		Demands: map[string]stats.Distribution{
			DiskIO: stats.NewExponential(WebDiskRate),
			CPU:    stats.NewExponential(WebCPURate),
		},
		MetricName: "replies/s",
	}
}

// SPECwebCPUBound models the Fig. 6 configuration: every request fetches
// one 8 KB file that stays in cache, so CPU is the bottleneck and disk
// demand vanishes.
func SPECwebCPUBound() ServiceProfile {
	return ServiceProfile{
		Name: "specweb-cpubound",
		Demands: map[string]stats.Distribution{
			CPU: stats.NewExponential(WebCPURate),
		},
		MetricName: "replies/s",
	}
}

// TPCWEbook models the paper's DB service: TPC-W e-book browsing over a
// 2.7 GB MySQL database (Fig. 8). CPU-bound ("such workload is CPU
// intensive"), negligible disk demand, and an OS-software ceiling of
// DBCPURate per OS image: hardware can complete interactions at
// DBHardwareCPURate, but a single OS image never exceeds DBCPURate —
// reproducing Fig. 8's observation that native Linux and one VM deliver
// half the throughput of multiple VMs.
func TPCWEbook() ServiceProfile {
	return ServiceProfile{
		Name: "tpcw-ebook",
		Demands: map[string]stats.Distribution{
			CPU: stats.NewExponential(DBHardwareCPURate),
		},
		OSCeiling:  DBCPURate,
		MetricName: "WIPS",
	}
}

// Scaled returns a copy of the profile with every demand multiplied by
// factor (> 0) — e.g. to model slower disks or heterogeneous servers.
func (p ServiceProfile) Scaled(factor float64) ServiceProfile {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("workload: invalid scale factor %v", factor))
	}
	out := p
	out.Demands = make(map[string]stats.Distribution, len(p.Demands))
	for r, d := range p.Demands {
		out.Demands[r] = stats.Scaled{D: d, Factor: factor}
	}
	if p.OSCeiling > 0 {
		out.OSCeiling = p.OSCeiling / factor
	}
	return out
}

// WithDemandSCV returns a copy of the profile whose demand distributions
// are replaced by distributions with the same means but the given squared
// coefficient of variation: SCV 1 keeps exponential, SCV 0 gives
// deterministic, SCV > 1 gives hyperexponential, SCV in (0, 1) gives
// Erlang-k with k = round(1/scv). This is the knob the insensitivity
// experiments turn ("the serving rate of each resource follows a general
// steady distribution", assumption 2).
func (p ServiceProfile) WithDemandSCV(scv float64) ServiceProfile {
	if scv < 0 || math.IsNaN(scv) {
		panic(fmt.Sprintf("workload: invalid SCV %v", scv))
	}
	out := p
	out.Demands = make(map[string]stats.Distribution, len(p.Demands))
	for r, d := range p.Demands {
		mean := d.Mean()
		switch {
		case scv == 0:
			out.Demands[r] = stats.Deterministic{Value: mean}
		case scv == 1:
			out.Demands[r] = stats.NewExponential(1 / mean)
		case scv > 1:
			out.Demands[r] = stats.HyperExpWithSCV(mean, scv)
		default:
			k := int(math.Round(1 / scv))
			if k < 2 {
				k = 2
			}
			out.Demands[r] = stats.ErlangKWithMean(mean, k)
		}
	}
	return out
}
