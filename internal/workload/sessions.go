package workload

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Sessions models SPECweb2005-style user sessions — the unit of Fig. 9(b)'s
// x-axis. Sessions arrive as a Poisson process; each session then issues a
// geometrically distributed number of requests separated by think gaps.
// The superposed request stream is burstier than Poisson at the same mean
// rate (requests cluster within sessions), which is exactly the structure
// the paper's Poisson assumption washes out.
type Sessions struct {
	// SessionRate is the session arrival rate (sessions/s).
	SessionRate float64
	// MeanRequests is the mean number of requests per session (geometric
	// with success probability 1/MeanRequests), >= 1.
	MeanRequests float64
	// Gap is the think-gap distribution between a session's consecutive
	// requests; nil means exponential with mean 1 s.
	Gap stats.Distribution

	pending sessionHeap // scheduled future request times (relative clock)
	clock   float64
	nextArr float64 // next session arrival time, 0 = not yet drawn
}

// NewSessions validates and returns the process.
func NewSessions(sessionRate, meanRequests float64, gap stats.Distribution) *Sessions {
	if sessionRate <= 0 || math.IsNaN(sessionRate) || math.IsInf(sessionRate, 0) {
		panic(fmt.Sprintf("workload: session rate %v", sessionRate))
	}
	if meanRequests < 1 || math.IsNaN(meanRequests) || math.IsInf(meanRequests, 0) {
		panic(fmt.Sprintf("workload: mean requests/session %v", meanRequests))
	}
	return &Sessions{SessionRate: sessionRate, MeanRequests: meanRequests, Gap: gap}
}

// Rate reports the long-run mean request rate: sessions/s × requests/session.
func (p *Sessions) Rate() float64 { return p.SessionRate * p.MeanRequests }

func (p *Sessions) String() string {
	return fmt.Sprintf("Sessions(rate=%g,req=%g)", p.SessionRate, p.MeanRequests)
}

// CloneProcess returns a copy with no pending sessions and a reset clock.
func (p *Sessions) CloneProcess() ArrivalProcess {
	return NewSessions(p.SessionRate, p.MeanRequests, p.Gap)
}

// sessionHeap is a min-heap of absolute request times.
type sessionHeap []float64

func (h sessionHeap) Len() int           { return len(h) }
func (h sessionHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h sessionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sessionHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *sessionHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// gapSample draws one think gap.
func (p *Sessions) gapSample(s *stats.Stream) float64 {
	if p.Gap != nil {
		return p.Gap.Sample(s)
	}
	return s.ExpFloat64() // mean 1 s
}

// spawnSession schedules all requests of a session starting at time t.
// The first request fires at the session start; each subsequent request
// follows with probability 1−1/MeanRequests after a think gap.
func (p *Sessions) spawnSession(t float64, s *stats.Stream) {
	heap.Push(&p.pending, t)
	if p.MeanRequests == 1 {
		return
	}
	cont := 1 - 1/p.MeanRequests
	for s.Bernoulli(cont) {
		t += p.gapSample(s)
		heap.Push(&p.pending, t)
	}
}

// Next advances to the next request arrival (from any active session) and
// returns the elapsed time.
func (p *Sessions) Next(s *stats.Stream) float64 {
	start := p.clock
	for {
		if p.nextArr == 0 {
			p.nextArr = p.clock + s.ExpFloat64()/p.SessionRate
		}
		// Materialize session arrivals that precede the earliest pending
		// request.
		for p.pending.Len() == 0 || p.nextArr <= p.pending[0] {
			p.spawnSession(p.nextArr, s)
			p.nextArr += s.ExpFloat64() / p.SessionRate
		}
		t := heap.Pop(&p.pending).(float64)
		if t < p.clock {
			// A think gap landed in the past relative to an earlier pop —
			// clamp (requests within a session are unordered in principle
			// but the stream must be monotone).
			t = p.clock
		}
		p.clock = t
		return p.clock - start
	}
}
