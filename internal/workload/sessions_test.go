package workload

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestSessionsMeanRate(t *testing.T) {
	// 5 sessions/s x 4 requests/session = 20 req/s.
	p := NewSessions(5, 4, nil)
	if p.Rate() != 20 {
		t.Fatalf("rate = %g", p.Rate())
	}
	got := measureRate(p, 4000, 81)
	if stats.RelativeError(got, 20) > 0.05 {
		t.Fatalf("measured %g, want 20", got)
	}
	if p.String() == "" {
		t.Fatal("empty description")
	}
}

func TestSessionsSingleRequestIsPoisson(t *testing.T) {
	// MeanRequests = 1 degenerates to a plain Poisson process.
	p := NewSessions(10, 1, nil)
	got := measureRate(p, 3000, 83)
	if stats.RelativeError(got, 10) > 0.05 {
		t.Fatalf("measured %g, want 10", got)
	}
	// Count autocorrelation ~ 0 (no clustering).
	counts := windowCounts(NewSessions(10, 1, nil), 1.0, 3000, 84)
	if ac := stats.Autocorrelation(counts, 1); math.Abs(ac) > 0.1 {
		t.Fatalf("single-request sessions correlated: %g", ac)
	}
}

func TestSessionsBurstierThanPoisson(t *testing.T) {
	// Long sessions with short gaps cluster requests: count variance
	// exceeds the Poisson (variance = mean) level.
	gap := stats.NewExponential(2) // 0.5 s mean gap: tight trains
	counts := windowCounts(NewSessions(2, 10, gap), 1.0, 6000, 85)
	mean := stats.Mean(counts)
	variance := stats.Variance(counts)
	if stats.RelativeError(mean, 20) > 0.1 {
		t.Fatalf("mean count %g, want ~20", mean)
	}
	if variance < 1.5*mean {
		t.Fatalf("sessions not bursty: var=%g mean=%g", variance, mean)
	}
	// And positively autocorrelated across windows (sessions span them).
	if ac := stats.Autocorrelation(counts, 1); ac < 0.05 {
		t.Fatalf("session counts uncorrelated: %g", ac)
	}
}

func TestSessionsMonotoneClock(t *testing.T) {
	p := NewSessions(3, 6, nil)
	s := stats.NewStream(87, "sessions/monotone")
	for i := 0; i < 20000; i++ {
		if gap := p.Next(s); gap < 0 {
			t.Fatalf("negative inter-arrival %g at %d", gap, i)
		}
	}
}

func TestSessionsPanics(t *testing.T) {
	cases := []func(){
		func() { NewSessions(0, 2, nil) },
		func() { NewSessions(-1, 2, nil) },
		func() { NewSessions(1, 0.5, nil) },
		func() { NewSessions(1, math.NaN(), nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// windowCounts bins the arrival stream of p into fixed windows.
func windowCounts(p ArrivalProcess, window, horizon float64, seed uint64) []float64 {
	s := stats.NewStream(seed, "wc/"+p.String())
	counts := make([]float64, int(horizon/window))
	clock := 0.0
	for {
		clock += p.Next(s)
		if clock >= horizon {
			return counts
		}
		counts[int(clock/window)]++
	}
}
