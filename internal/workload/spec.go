package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ArrivalSpec is the declarative, JSON-serializable description of an
// ArrivalProcess: a kind tag plus the flat union of every kind's
// parameters. Scenario files use it to name arrival processes without
// holding live (stateful) process values; Build materializes a fresh
// process, so every caller gets independent state.
//
// Kinds and their parameters:
//
//	poisson    rate
//	renewal    inter (a distribution spec)
//	mmpp2      rate1, rate2, hold1, hold2
//	onoff      rate1 (burst rate), hold1 (mean burst), hold2 (mean idle)
//	nhpp       rates, bin_sec, cycle
//	sessions   session_rate, mean_requests, gap (optional distribution)
//	superpose  parts (nested specs)
//
// Unused parameters must be left zero; Validate rejects out-of-domain
// values, and Build never panics on a validated spec.
type ArrivalSpec struct {
	Kind string `json:"kind"`

	// poisson.
	Rate float64 `json:"rate,omitempty"`

	// renewal.
	Inter *stats.DistSpec `json:"inter,omitempty"`

	// mmpp2 (onoff uses rate1/hold1/hold2).
	Rate1 float64 `json:"rate1,omitempty"`
	Rate2 float64 `json:"rate2,omitempty"`
	Hold1 float64 `json:"hold1,omitempty"`
	Hold2 float64 `json:"hold2,omitempty"`

	// nhpp.
	Rates  []float64 `json:"rates,omitempty"`
	BinSec float64   `json:"bin_sec,omitempty"`
	Cycle  bool      `json:"cycle,omitempty"`

	// sessions.
	SessionRate  float64         `json:"session_rate,omitempty"`
	MeanRequests float64         `json:"mean_requests,omitempty"`
	Gap          *stats.DistSpec `json:"gap,omitempty"`

	// superpose.
	Parts []ArrivalSpec `json:"parts,omitempty"`
}

// ErrInvalidSpec reports an unusable declarative arrival spec.
var ErrInvalidSpec = fmt.Errorf("workload: invalid arrival spec")

// Clone returns a deep copy: mutating the copy (nested distribution
// specs, NHPP rate tables, superpose parts) never touches the original.
func (s ArrivalSpec) Clone() ArrivalSpec {
	if s.Inter != nil {
		inter := s.Inter.Clone()
		s.Inter = &inter
	}
	if s.Gap != nil {
		gap := s.Gap.Clone()
		s.Gap = &gap
	}
	if s.Rates != nil {
		s.Rates = append([]float64(nil), s.Rates...)
	}
	if s.Parts != nil {
		parts := make([]ArrivalSpec, len(s.Parts))
		for i := range s.Parts {
			parts[i] = s.Parts[i].Clone()
		}
		s.Parts = parts
	}
	return s
}

func specFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func specPositive(v float64) bool { return v > 0 && specFinite(v) }

// Validate checks that the spec describes a buildable arrival process.
func (s ArrivalSpec) Validate() error {
	switch s.Kind {
	case "poisson":
		if !specPositive(s.Rate) {
			return fmt.Errorf("%w: poisson rate %g", ErrInvalidSpec, s.Rate)
		}
	case "renewal":
		if s.Inter == nil {
			return fmt.Errorf("%w: renewal needs an inter-arrival distribution", ErrInvalidSpec)
		}
		if err := s.Inter.Validate(); err != nil {
			return err
		}
	case "mmpp2":
		if s.Rate1 < 0 || s.Rate2 < 0 || !specFinite(s.Rate1) || !specFinite(s.Rate2) {
			return fmt.Errorf("%w: mmpp2 rates %g, %g", ErrInvalidSpec, s.Rate1, s.Rate2)
		}
		if s.Rate1 == 0 && s.Rate2 == 0 {
			return fmt.Errorf("%w: mmpp2 needs a positive rate in some phase", ErrInvalidSpec)
		}
		if !specPositive(s.Hold1) || !specPositive(s.Hold2) {
			return fmt.Errorf("%w: mmpp2 holding times %g, %g", ErrInvalidSpec, s.Hold1, s.Hold2)
		}
	case "onoff":
		if !specPositive(s.Rate1) {
			return fmt.Errorf("%w: onoff burst rate %g", ErrInvalidSpec, s.Rate1)
		}
		if !specPositive(s.Hold1) || !specPositive(s.Hold2) {
			return fmt.Errorf("%w: onoff burst/idle times %g, %g", ErrInvalidSpec, s.Hold1, s.Hold2)
		}
	case "nhpp":
		if len(s.Rates) == 0 {
			return fmt.Errorf("%w: nhpp needs at least one rate", ErrInvalidSpec)
		}
		positive := false
		for i, r := range s.Rates {
			if r < 0 || !specFinite(r) {
				return fmt.Errorf("%w: nhpp rate[%d] %g", ErrInvalidSpec, i, r)
			}
			if r > 0 {
				positive = true
			}
		}
		if !positive {
			return fmt.Errorf("%w: nhpp needs a positive rate somewhere", ErrInvalidSpec)
		}
		if !specPositive(s.BinSec) {
			return fmt.Errorf("%w: nhpp bin width %g", ErrInvalidSpec, s.BinSec)
		}
	case "sessions":
		if !specPositive(s.SessionRate) {
			return fmt.Errorf("%w: session rate %g", ErrInvalidSpec, s.SessionRate)
		}
		if s.MeanRequests < 1 || !specFinite(s.MeanRequests) {
			return fmt.Errorf("%w: mean requests/session %g", ErrInvalidSpec, s.MeanRequests)
		}
		if s.Gap != nil {
			if err := s.Gap.Validate(); err != nil {
				return err
			}
		}
	case "superpose":
		if len(s.Parts) == 0 {
			return fmt.Errorf("%w: superpose needs at least one part", ErrInvalidSpec)
		}
		for i := range s.Parts {
			if err := s.Parts[i].Validate(); err != nil {
				return fmt.Errorf("superpose part %d: %w", i, err)
			}
		}
	case "":
		return fmt.Errorf("%w: missing kind", ErrInvalidSpec)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalidSpec, s.Kind)
	}
	return nil
}

// Build materializes a fresh arrival process with pristine state. It
// validates first, so it never panics; the returned process is identical
// to one built through the package's constructors with the same
// parameters.
func (s ArrivalSpec) Build() (ArrivalProcess, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case "poisson":
		return NewPoisson(s.Rate), nil
	case "renewal":
		inter, err := s.Inter.Build()
		if err != nil {
			return nil, err
		}
		return &Renewal{Inter: inter}, nil
	case "mmpp2":
		return NewMMPP2(s.Rate1, s.Rate2, s.Hold1, s.Hold2), nil
	case "onoff":
		return OnOff(s.Rate1, s.Hold1, s.Hold2), nil
	case "nhpp":
		return NewNHPP(s.Rates, s.BinSec, s.Cycle), nil
	case "sessions":
		var gap stats.Distribution
		if s.Gap != nil {
			var err error
			gap, err = s.Gap.Build()
			if err != nil {
				return nil, err
			}
		}
		return NewSessions(s.SessionRate, s.MeanRequests, gap), nil
	case "superpose":
		procs := make([]ArrivalProcess, len(s.Parts))
		for i := range s.Parts {
			p, err := s.Parts[i].Build()
			if err != nil {
				return nil, err
			}
			procs[i] = p
		}
		return NewSuperpose(procs...), nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q", ErrInvalidSpec, s.Kind)
}

// PoissonSpec is shorthand for the Poisson spec with the given rate.
func PoissonSpec(rate float64) *ArrivalSpec { return &ArrivalSpec{Kind: "poisson", Rate: rate} }
