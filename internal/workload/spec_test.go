package workload

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/stats"
)

func TestArrivalSpecBuildMatchesConstructors(t *testing.T) {
	cases := []struct {
		spec ArrivalSpec
		want ArrivalProcess
	}{
		{*PoissonSpec(100), NewPoisson(100)},
		{ArrivalSpec{Kind: "renewal", Inter: &stats.DistSpec{Kind: "deterministic", Value: 0.01}},
			&Renewal{Inter: stats.Deterministic{Value: 0.01}}},
		{ArrivalSpec{Kind: "mmpp2", Rate1: 10, Rate2: 1, Hold1: 2, Hold2: 5},
			NewMMPP2(10, 1, 2, 5)},
		{ArrivalSpec{Kind: "onoff", Rate1: 20, Hold1: 1, Hold2: 3}, OnOff(20, 1, 3)},
		{ArrivalSpec{Kind: "nhpp", Rates: []float64{1, 5, 2}, BinSec: 60, Cycle: true},
			NewNHPP([]float64{1, 5, 2}, 60, true)},
		{ArrivalSpec{Kind: "sessions", SessionRate: 2, MeanRequests: 10,
			Gap: &stats.DistSpec{Kind: "exponential", Rate: 2}},
			NewSessions(2, 10, stats.Exponential{Rate: 2})},
	}
	for _, c := range cases {
		got, err := c.spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Kind, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: built %#v, want %#v", c.spec.Kind, got, c.want)
		}
	}
}

func TestArrivalSpecSuperpose(t *testing.T) {
	spec := ArrivalSpec{Kind: "superpose", Parts: []ArrivalSpec{
		*PoissonSpec(5),
		{Kind: "mmpp2", Rate1: 4, Rate2: 1, Hold1: 1, Hold2: 1},
	}}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := p.(*Superpose)
	if !ok {
		t.Fatalf("built %T", p)
	}
	if got, want := sp.Rate(), 5+2.5; got != want {
		t.Fatalf("superposed rate %g, want %g", got, want)
	}
	// Each Build call returns independent state.
	q, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p == q {
		t.Fatal("Build returned shared process state")
	}
}

func TestArrivalSpecValidateRejects(t *testing.T) {
	bad := []ArrivalSpec{
		{},
		{Kind: "weibull"},
		{Kind: "poisson"},
		{Kind: "poisson", Rate: -1},
		{Kind: "renewal"},
		{Kind: "renewal", Inter: &stats.DistSpec{Kind: "exponential"}},
		{Kind: "mmpp2", Rate1: 0, Rate2: 0, Hold1: 1, Hold2: 1},
		{Kind: "mmpp2", Rate1: 1, Rate2: 1, Hold1: 0, Hold2: 1},
		{Kind: "onoff", Rate1: 0, Hold1: 1, Hold2: 1},
		{Kind: "nhpp", BinSec: 60},
		{Kind: "nhpp", Rates: []float64{0, 0}, BinSec: 60},
		{Kind: "nhpp", Rates: []float64{1, -2}, BinSec: 60},
		{Kind: "nhpp", Rates: []float64{1}, BinSec: 0},
		{Kind: "sessions", SessionRate: 0, MeanRequests: 10},
		{Kind: "sessions", SessionRate: 1, MeanRequests: 0.5},
		{Kind: "sessions", SessionRate: 1, MeanRequests: 2, Gap: &stats.DistSpec{Kind: "nope"}},
		{Kind: "superpose"},
		{Kind: "superpose", Parts: []ArrivalSpec{{Kind: "poisson"}}},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %+v validated", spec)
		}
		if _, err := spec.Build(); err == nil {
			t.Errorf("spec %+v built", spec)
		}
	}
}

func TestArrivalSpecJSONRoundTrip(t *testing.T) {
	spec := ArrivalSpec{Kind: "superpose", Parts: []ArrivalSpec{
		{Kind: "nhpp", Rates: []float64{1, 2, 3}, BinSec: 900, Cycle: true},
		{Kind: "sessions", SessionRate: 3, MeanRequests: 8, Gap: &stats.DistSpec{Kind: "exponential", Rate: 2}},
	}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back ArrivalSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip %+v -> %+v", spec, back)
	}
}
