package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// measureRate counts arrivals of p over a long horizon.
func measureRate(p ArrivalProcess, horizon float64, seed uint64) float64 {
	s := stats.NewStream(seed, "arrivals/"+p.String())
	t := 0.0
	n := 0
	for {
		t += p.Next(s)
		if t > horizon {
			break
		}
		n++
	}
	return float64(n) / horizon
}

func TestPoissonRate(t *testing.T) {
	p := NewPoisson(50)
	got := measureRate(p, 2000, 1)
	if stats.RelativeError(got, 50) > 0.02 {
		t.Fatalf("measured rate %g, want 50", got)
	}
	if p.Rate() != 50 || p.String() == "" {
		t.Fatal("metadata wrong")
	}
}

func TestPoissonPanics(t *testing.T) {
	for _, r := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPoisson(%v) did not panic", r)
				}
			}()
			NewPoisson(r)
		}()
	}
}

func TestPoissonInterarrivalVariability(t *testing.T) {
	// Poisson inter-arrivals have SCV 1.
	p := NewPoisson(10)
	s := stats.NewStream(3, "scv")
	var acc stats.Accumulator
	for i := 0; i < 100000; i++ {
		acc.Add(p.Next(s))
	}
	scv := acc.Variance() / (acc.Mean() * acc.Mean())
	if math.Abs(scv-1) > 0.05 {
		t.Fatalf("SCV = %g", scv)
	}
}

func TestRenewalDeterministic(t *testing.T) {
	r := &Renewal{Inter: stats.Deterministic{Value: 0.1}}
	if r.Rate() != 10 {
		t.Fatalf("rate = %g", r.Rate())
	}
	got := measureRate(r, 100, 2)
	if stats.RelativeError(got, 10) > 0.02 {
		t.Fatalf("measured %g", got)
	}
}

func TestRenewalParetoHeavyTail(t *testing.T) {
	r := &Renewal{Inter: stats.ParetoWithMean(0.1, 2.5)}
	if stats.RelativeError(r.Rate(), 10) > 1e-9 {
		t.Fatalf("rate = %g", r.Rate())
	}
	got := measureRate(r, 5000, 4)
	if stats.RelativeError(got, 10) > 0.1 {
		t.Fatalf("measured %g, want ~10", got)
	}
}

func TestRenewalInfiniteMeanRate(t *testing.T) {
	r := &Renewal{Inter: stats.Pareto{Xm: 1, Alpha: 0.5}} // infinite mean
	if r.Rate() != 0 {
		t.Fatalf("rate should degrade to 0, got %g", r.Rate())
	}
}

func TestMMPP2StationaryRate(t *testing.T) {
	m := NewMMPP2(100, 10, 1, 3)
	want := (100*1 + 10*3) / 4.0 // 32.5
	if stats.RelativeError(m.Rate(), want) > 1e-12 {
		t.Fatalf("analytic rate = %g", m.Rate())
	}
	got := measureRate(m, 3000, 5)
	if stats.RelativeError(got, want) > 0.05 {
		t.Fatalf("measured %g, want %g", got, want)
	}
}

func TestMMPP2Burstiness(t *testing.T) {
	// MMPP arrivals must be burstier than Poisson at the same mean rate:
	// the variance of counts in windows exceeds the mean count.
	m := NewMMPP2(200, 2, 0.5, 0.5)
	s := stats.NewStream(7, "bursty")
	window := 1.0
	var counts []float64
	t0, c := 0.0, 0.0
	now := 0.0
	for now < 2000 {
		gap := m.Next(s)
		now += gap
		for now-t0 > window {
			counts = append(counts, c)
			c = 0
			t0 += window
		}
		c++
	}
	mean := stats.Mean(counts)
	varc := stats.Variance(counts)
	if varc < 1.5*mean {
		t.Fatalf("MMPP not bursty: var=%g mean=%g", varc, mean)
	}
}

func TestMMPP2Panics(t *testing.T) {
	cases := [][4]float64{
		{-1, 1, 1, 1},
		{1, -1, 1, 1},
		{1, 1, 0, 1},
		{1, 1, 1, 0},
		{0, 0, 1, 1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMMPP2(%v) did not panic", c)
				}
			}()
			NewMMPP2(c[0], c[1], c[2], c[3])
		}()
	}
}

func TestOnOff(t *testing.T) {
	p := OnOff(100, 1, 4)
	want := 100.0 * 1 / 5
	if stats.RelativeError(p.Rate(), want) > 1e-12 {
		t.Fatalf("rate = %g", p.Rate())
	}
	got := measureRate(p, 3000, 9)
	if stats.RelativeError(got, want) > 0.07 {
		t.Fatalf("measured %g, want %g", got, want)
	}
}

func TestSuperposeRateAndSources(t *testing.T) {
	sp := NewSuperpose(NewPoisson(30), NewPoisson(10))
	if sp.Rate() != 40 {
		t.Fatalf("rate = %g", sp.Rate())
	}
	s := stats.NewStream(11, "superpose")
	counts := [2]int{}
	now := 0.0
	for now < 1000 {
		now += sp.Next(s)
		counts[sp.SourceOf()]++
	}
	total := counts[0] + counts[1]
	if stats.RelativeError(float64(total)/1000, 40) > 0.05 {
		t.Fatalf("total rate %g", float64(total)/1000)
	}
	frac := float64(counts[0]) / float64(total)
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("source split %g, want 0.75", frac)
	}
}

func TestSuperposePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty superpose accepted")
		}
	}()
	NewSuperpose()
}

func TestProfileServingRates(t *testing.T) {
	web := SPECwebEcommerce()
	if err := web.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(web.ServingRate(DiskIO), WebDiskRate) > 1e-9 {
		t.Fatalf("web disk rate = %g", web.ServingRate(DiskIO))
	}
	if stats.RelativeError(web.ServingRate(CPU), WebCPURate) > 1e-9 {
		t.Fatalf("web cpu rate = %g", web.ServingRate(CPU))
	}
	if !math.IsInf(web.ServingRate("memory"), 1) {
		t.Fatal("untouched resource should have infinite rate")
	}
	r, rate := web.BottleneckResource()
	if r != DiskIO || stats.RelativeError(rate, WebDiskRate) > 1e-9 {
		t.Fatalf("bottleneck = %s/%g", r, rate)
	}
}

func TestTPCWProfile(t *testing.T) {
	db := TPCWEbook()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if db.OSCeiling != DBCPURate {
		t.Fatalf("OS ceiling = %g", db.OSCeiling)
	}
	if stats.RelativeError(db.ServingRate(CPU), DBHardwareCPURate) > 1e-9 {
		t.Fatalf("hardware rate = %g", db.ServingRate(CPU))
	}
	// The effective single-OS rate min(hardware, ceiling) equals μ_dc.
	eff := math.Min(db.ServingRate(CPU), db.OSCeiling)
	if eff != DBCPURate {
		t.Fatalf("effective native rate = %g", eff)
	}
}

func TestProfileValidateErrors(t *testing.T) {
	bad := ServiceProfile{}
	if bad.Validate() == nil {
		t.Fatal("empty profile accepted")
	}
	bad = ServiceProfile{Name: "x"}
	if bad.Validate() == nil {
		t.Fatal("no-demand profile accepted")
	}
	bad = ServiceProfile{Name: "x", Demands: map[string]stats.Distribution{CPU: nil}}
	if bad.Validate() == nil {
		t.Fatal("nil demand accepted")
	}
	bad = SPECwebCPUBound()
	bad.OSCeiling = -1
	if bad.Validate() == nil {
		t.Fatal("negative ceiling accepted")
	}
}

func TestScaledProfile(t *testing.T) {
	web := SPECwebEcommerce().Scaled(2) // twice the demand = half the rate
	if stats.RelativeError(web.ServingRate(DiskIO), WebDiskRate/2) > 1e-9 {
		t.Fatalf("scaled disk rate = %g", web.ServingRate(DiskIO))
	}
	db := TPCWEbook().Scaled(2)
	if stats.RelativeError(db.OSCeiling, DBCPURate/2) > 1e-9 {
		t.Fatalf("scaled ceiling = %g", db.OSCeiling)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid scale accepted")
		}
	}()
	web.Scaled(0)
}

func TestWithDemandSCV(t *testing.T) {
	web := SPECwebEcommerce()
	for _, scv := range []float64{0, 0.25, 0.5, 1, 4} {
		p := web.WithDemandSCV(scv)
		// Means must be preserved exactly.
		for r, d := range p.Demands {
			want := web.Demands[r].Mean()
			if stats.RelativeError(d.Mean(), want) > 1e-9 {
				t.Fatalf("scv=%g resource %s mean %g, want %g", scv, r, d.Mean(), want)
			}
		}
		// SCV must be (approximately) honored.
		d := p.Demands[CPU]
		got := stats.SCV(d)
		switch {
		case scv == 0:
			if got != 0 {
				t.Fatalf("SCV = %g, want 0", got)
			}
		case scv >= 1:
			if stats.RelativeError(got, scv) > 1e-9 {
				t.Fatalf("SCV = %g, want %g", got, scv)
			}
		default:
			// Erlang-k approximates: 1/k for k=round(1/scv).
			if got <= 0 || got >= 1 {
				t.Fatalf("SCV = %g, want in (0,1)", got)
			}
		}
	}
}

func TestWithDemandSCVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative SCV accepted")
		}
	}()
	SPECwebEcommerce().WithDemandSCV(-1)
}

// Property: superposition rate equals the sum of component rates, and
// arrivals are non-negative.
func TestSuperposeProperty(t *testing.T) {
	f := func(r1, r2 uint8) bool {
		rate1 := float64(r1%50) + 1
		rate2 := float64(r2%50) + 1
		sp := NewSuperpose(NewPoisson(rate1), NewPoisson(rate2))
		if math.Abs(sp.Rate()-(rate1+rate2)) > 1e-9 {
			return false
		}
		s := stats.NewStream(uint64(r1)<<8|uint64(r2), "prop")
		for i := 0; i < 50; i++ {
			if sp.Next(s) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMMPPInterarrivalCorrelation(t *testing.T) {
	// Counts per window of an MMPP are positively autocorrelated (phases
	// persist across windows); Poisson counts are not.
	countSeries := func(p ArrivalProcess, seed uint64) []float64 {
		s := stats.NewStream(seed, "accounts")
		const window, horizon = 1.0, 4000.0
		counts := make([]float64, int(horizon/window))
		clock := 0.0
		for {
			clock += p.Next(s)
			if clock >= horizon {
				break
			}
			counts[int(clock/window)]++
		}
		return counts
	}
	mmpp := countSeries(NewMMPP2(40, 2, 5, 5), 51)
	poisson := countSeries(NewPoisson(21), 52)
	acM := stats.Autocorrelation(mmpp, 1)
	acP := stats.Autocorrelation(poisson, 1)
	if acM < 0.3 {
		t.Fatalf("MMPP lag-1 count autocorrelation %.3f, want strongly positive", acM)
	}
	if math.Abs(acP) > 0.1 {
		t.Fatalf("Poisson lag-1 count autocorrelation %.3f, want ~0", acP)
	}
}
